package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReplayCommandReproducesRun captures a trace with `run -records` and
// replays it: the replayed overview must name the same application and
// report the same headline numbers the original run printed.
func TestReplayCommandReproducesRun(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "records.json")

	code, runOut, errOut := runMain(t, "run", "rodinia_gaussian", "-scale", "0.05", "-records", tracePath)
	if code != 0 {
		t.Fatalf("run exit = %d, stderr = %q", code, errOut)
	}
	code, replayOut, errOut := runMain(t, "replay", tracePath)
	if code != 0 {
		t.Fatalf("replay exit = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(replayOut, "rodinia_gaussian") {
		t.Fatalf("replay lost the application name:\n%s", replayOut)
	}
	// The overview section must be identical line for line.
	runLines := strings.Split(runOut, "\n")
	replayLines := strings.Split(replayOut, "\n")
	for i, line := range runLines {
		if strings.HasPrefix(line, "Diogenes Overview Display") {
			for j := 0; ; j++ {
				if runLines[i+j] == "" {
					break
				}
				if i+j >= len(replayLines) || runLines[i+j] != replayLines[i+j] {
					t.Fatalf("overview diverged at line %d:\nrun:    %q\nreplay: %q",
						i+j, runLines[i+j], replayLines[i+j])
				}
			}
			return
		}
	}
	t.Fatal("no overview section in run output")
}

// TestReplayCommandErrors covers the replay argument and file error paths.
func TestReplayCommandErrors(t *testing.T) {
	if code, _, errOut := runMain(t, "replay"); code != 1 || !strings.Contains(errOut, "trace file expected") {
		t.Fatalf("bare replay: code=%d stderr=%q", code, errOut)
	}
	if code, _, _ := runMain(t, "replay", "/nonexistent/trace.json"); code != 1 {
		t.Fatalf("missing file accepted: code=%d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runMain(t, "replay", bad); code != 1 {
		t.Fatalf("bad trace accepted: code=%d", code)
	}
}

// TestRunFamilyFlag runs a generative family through the CLI.
func TestRunFamilyFlag(t *testing.T) {
	code, out, errOut := runMain(t, "run", "-family", "sync-heavy", "-seed", "3", "-steps", "10")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "sync-heavy-3") {
		t.Fatalf("family app name missing from output:\n%s", out)
	}
	if code, _, errOut := runMain(t, "run", "amg", "-family", "sync-heavy"); code != 1 ||
		!strings.Contains(errOut, "not both") {
		t.Fatalf("name+family accepted: code=%d stderr=%q", code, errOut)
	}
	if code, _, errOut := runMain(t, "run", "-family", "no-such"); code != 1 ||
		!strings.Contains(errOut, "unknown family") {
		t.Fatalf("unknown family: code=%d stderr=%q", code, errOut)
	}
}

// TestListShowsFamilies pins the family section of `diogenes list`.
func TestListShowsFamilies(t *testing.T) {
	code, out, _ := runMain(t, "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"ml-train", "thrust-churn", "multi-stream", "mpi-imbalanced", "sync-heavy", "random"} {
		if !strings.Contains(out, name) {
			t.Errorf("list missing family %s", name)
		}
	}
}
