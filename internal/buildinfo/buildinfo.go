// Package buildinfo renders the binary's identity line — module version,
// Go toolchain, VCS stamp — shared by the CLI version command, the served
// timeline, and the Chrome trace metadata. One renderer, one identity.
package buildinfo

import (
	"runtime/debug"
	"strings"
	"sync"
)

// Version returns the build's identity line, e.g.
// "diogenes devel go1.22.1 0123abcd4567". Memoized: debug.ReadBuildInfo
// parses the binary's embedded module data on every call.
var Version = sync.OnceValue(func() string {
	return String(debug.ReadBuildInfo())
})

// String renders one identity line from build info; factored out so tests
// can feed synthetic info.
func String(info *debug.BuildInfo, ok bool) string {
	if !ok || info == nil {
		return "diogenes (no build info)"
	}
	ver := info.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var parts []string
	parts = append(parts, "diogenes "+ver)
	if info.GoVersion != "" {
		parts = append(parts, info.GoVersion)
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "+dirty"
		}
		parts = append(parts, rev)
	}
	return strings.Join(parts, " ")
}
