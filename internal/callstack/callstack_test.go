package callstack

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPushPopDepth(t *testing.T) {
	s := New()
	s.Push("main", "main.cpp", 1)
	s.Push("solve", "als.cpp", 100)
	if s.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", s.Depth())
	}
	s.Pop()
	if s.Depth() != 1 {
		t.Fatalf("Depth after pop = %d", s.Depth())
	}
	if s.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d, want 2", s.MaxDepth())
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop of empty stack did not panic")
		}
	}()
	New().Pop()
}

func TestSetLineEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetLine on empty stack did not panic")
		}
	}()
	New().SetLine(5)
}

func TestSnapshotInnermostFirst(t *testing.T) {
	s := New()
	s.Push("main", "main.cpp", 10)
	s.Push("outer", "a.cpp", 20)
	s.Push("inner", "b.cpp", 30)
	tr := s.Snapshot()
	if len(tr) != 3 {
		t.Fatalf("len = %d", len(tr))
	}
	if tr[0].Function != "inner" || tr[2].Function != "main" {
		t.Fatalf("order wrong: %v", tr)
	}
	if tr.Leaf().Function != "inner" {
		t.Fatalf("Leaf = %v", tr.Leaf())
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	s := New()
	s.Push("main", "main.cpp", 10)
	tr := s.Snapshot()
	s.SetLine(99)
	if tr[0].Line != 10 {
		t.Fatal("snapshot aliased live stack")
	}
}

func TestSetLine(t *testing.T) {
	s := New()
	s.Push("f", "f.cpp", 1)
	s.SetLine(42)
	if s.Current().Line != 42 {
		t.Fatalf("Current().Line = %d", s.Current().Line)
	}
}

func TestCurrentEmpty(t *testing.T) {
	if (New().Current() != Frame{}) {
		t.Fatal("Current of empty stack should be zero Frame")
	}
	if (Trace{}).Leaf() != (Frame{}) {
		t.Fatal("Leaf of empty trace should be zero Frame")
	}
}

func TestTraceKeyDistinguishesLines(t *testing.T) {
	a := Trace{{Function: "f", File: "x.cpp", Line: 10}}
	b := Trace{{Function: "f", File: "x.cpp", Line: 11}}
	if a.Key() == b.Key() {
		t.Fatal("Key should distinguish different lines")
	}
	if a.FoldKey() != b.FoldKey() {
		t.Fatal("FoldKey should not distinguish different lines")
	}
}

func TestTraceFoldKeyMergesTemplates(t *testing.T) {
	a := Trace{{Function: "storage<float>::alloc", File: "s.h", Line: 5}}
	b := Trace{{Function: "storage<double>::alloc", File: "s.h", Line: 9}}
	if a.FoldKey() != b.FoldKey() {
		t.Fatalf("FoldKey %q != %q", a.FoldKey(), b.FoldKey())
	}
	if a.Key() == b.Key() {
		t.Fatal("Key should distinguish template instantiations")
	}
}

func TestTraceEqualClone(t *testing.T) {
	a := Trace{{Function: "f", File: "x", Line: 1}, {Function: "g", File: "y", Line: 2}}
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not Equal")
	}
	c[0].Line = 99
	if a.Equal(c) {
		t.Fatal("Equal missed differing frame")
	}
	if a.Equal(a[:1]) {
		t.Fatal("Equal missed length difference")
	}
}

func TestTraceString(t *testing.T) {
	a := Trace{{Function: "f", File: "x.cpp", Line: 1}}
	s := a.String()
	if !strings.Contains(s, "#0 f at x.cpp:1") {
		t.Fatalf("String = %q", s)
	}
}

func TestDemangle(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain_function", "plain_function"},
		{"vec<int>::push", "vec::push"},
		{"thrust::detail::contiguous_storage<T, alloc<T>>::allocate",
			"thrust::detail::contiguous_storage::allocate"},
		{"cusp::system::detail::generic::multiply<cusp::array2d<float, cusp::device_memory>>",
			"cusp::system::detail::generic::multiply"},
		{"thrust::pair<iterator, iterator>", "thrust::pair"},
		{"operator<<", "operator<<"},
		{"matrix<double>::operator[]", "matrix::operator[]"},
		{"std::max<unsigned long>", "std::max"},
		{"a<b<c<d>>>::e", "a::e"},
	}
	for _, c := range cases {
		if got := Demangle(c.in); got != c.want {
			t.Errorf("Demangle(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFrameHelpers(t *testing.T) {
	f := Frame{Function: "storage<int>::fill", File: "s.h", Line: 12}
	if f.String() != "storage<int>::fill at s.h:12" {
		t.Fatalf("String = %q", f.String())
	}
	if f.Site() != "s.h:12" {
		t.Fatalf("Site = %q", f.Site())
	}
	if f.BaseName() != "storage::fill" {
		t.Fatalf("BaseName = %q", f.BaseName())
	}
}

func TestQuickDemangleIdempotent(t *testing.T) {
	f := func(parts []uint8) bool {
		// Build a synthetic name from a constrained alphabet.
		alphabet := []string{"a", "b", "ns::", "<", ">", "x", "::f", "operator<"}
		var b strings.Builder
		for _, p := range parts {
			b.WriteString(alphabet[int(p)%len(alphabet)])
		}
		once := Demangle(b.String())
		return Demangle(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPushPopRestoresDepth(t *testing.T) {
	f := func(n uint8) bool {
		s := New()
		s.Push("root", "r.cpp", 1)
		for i := 0; i < int(n%20); i++ {
			s.Push("f", "f.cpp", i)
		}
		for i := 0; i < int(n%20); i++ {
			s.Pop()
		}
		return s.Depth() == 1 && s.Current().Function == "root"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedSnapshotMatchesSnapshot(t *testing.T) {
	s := New()
	s.Push("main", "main.cpp", 1)
	s.Push("solve", "solve.cpp", 10)
	if got, want := s.SharedSnapshot(), s.Snapshot(); !got.Equal(want) {
		t.Fatalf("SharedSnapshot = %v, want %v", got, want)
	}
	s.SetLine(11)
	if got, want := s.SharedSnapshot(), s.Snapshot(); !got.Equal(want) {
		t.Fatalf("after SetLine: SharedSnapshot = %v, want %v", got, want)
	}
	s.Pop()
	if got, want := s.SharedSnapshot(), s.Snapshot(); !got.Equal(want) {
		t.Fatalf("after Pop: SharedSnapshot = %v, want %v", got, want)
	}
}

func TestSharedSnapshotInterns(t *testing.T) {
	s := New()
	s.Push("main", "main.cpp", 1)
	s.Push("loop", "loop.cpp", 5)
	a := s.SharedSnapshot()
	// Leave and re-enter the same position: the trace must be the very
	// same slice, not merely an equal one.
	s.Pop()
	s.Push("loop", "loop.cpp", 5)
	b := s.SharedSnapshot()
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("identical stacks produced distinct snapshot allocations")
	}
	// Repeated snapshots without mutation hit the memoized fast path.
	c := s.SharedSnapshot()
	if &b[0] != &c[0] {
		t.Fatal("memoized snapshot not reused")
	}
}

func TestSharedSnapshotEmptyStack(t *testing.T) {
	s := New()
	got := s.SharedSnapshot()
	if got == nil || len(got) != 0 {
		t.Fatalf("empty SharedSnapshot = %#v, want non-nil empty trace", got)
	}
}

func TestSharedSnapshotDistinctLines(t *testing.T) {
	s := New()
	s.Push("f", "f.cpp", 1)
	a := s.SharedSnapshot()
	s.SetLine(2)
	b := s.SharedSnapshot()
	if a.Equal(b) {
		t.Fatal("snapshots at different lines compare equal")
	}
	if a[0].Line != 1 || b[0].Line != 2 {
		t.Fatalf("interned traces mutated: %v / %v", a, b)
	}
}
