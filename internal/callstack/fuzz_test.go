package callstack

import (
	"strings"
	"testing"
)

// FuzzDemangle exercises the template-stripping demangler with arbitrary
// inputs: it must never panic, must be idempotent, and must preserve names
// containing no template markup.
func FuzzDemangle(f *testing.F) {
	for _, seed := range []string{
		"plain",
		"ns::fn",
		"vec<int>::push",
		"thrust::detail::contiguous_storage<T, alloc<T>>::allocate",
		"operator<<",
		"a<b<c<d>>>::e",
		"unbalanced<<<",
		">>>reversed",
		"operator",
		"<>",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		once := Demangle(name)
		twice := Demangle(once)
		if once != twice {
			t.Fatalf("not idempotent: %q -> %q -> %q", name, once, twice)
		}
		if !strings.ContainsAny(name, "<>") && once != name {
			t.Fatalf("template-free name changed: %q -> %q", name, once)
		}
		if len(once) > len(name) {
			t.Fatalf("demangling grew the name: %q -> %q", name, once)
		}
	})
}
