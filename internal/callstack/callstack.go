// Package callstack tracks the simulated application's call stack and
// implements the stack-trace identity rules Diogenes' analysis stage uses
// for grouping problems.
//
// The real tool walks the native stack at each intercepted driver call. Here
// the application framework pushes a Frame for every modelled source
// function, and instrumentation snapshots the stack on demand. Two identity
// keys matter for §3.5.2's groupings: the *single point* key matches frames
// by exact instruction position (function, file, line), and the *folded
// function* key matches by demangled base function name with template
// parameter types discarded, so all instantiations of one C++ template fold
// together.
package callstack

import (
	"fmt"
	"strings"
)

// Frame is one activation record: the function executing and the source
// coordinates of the call site it is currently at.
type Frame struct {
	Function string `json:"function"`
	File     string `json:"file"`
	Line     int    `json:"line"`
}

// String renders the frame like a debugger would.
func (f Frame) String() string {
	return fmt.Sprintf("%s at %s:%d", f.Function, f.File, f.Line)
}

// Site returns just the source position of the frame.
func (f Frame) Site() string { return fmt.Sprintf("%s:%d", f.File, f.Line) }

// BaseName returns the frame's function name with C++ template parameter
// lists removed (see Demangle).
func (f Frame) BaseName() string { return Demangle(f.Function) }

// Trace is a snapshot of the stack, innermost frame first (index 0 is the
// function that performed the operation).
type Trace []Frame

// Leaf returns the innermost frame, or a zero Frame for an empty trace.
func (t Trace) Leaf() Frame {
	if len(t) == 0 {
		return Frame{}
	}
	return t[0]
}

// Key is the single-point identity: every frame matched by exact
// function/file/line. Two operations with equal Keys originate from the same
// instruction through the same path.
func (t Trace) Key() string {
	var b strings.Builder
	for i, f := range t {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s@%s:%d", f.Function, f.File, f.Line)
	}
	return b.String()
}

// FoldKey is the folded-function identity: frames matched by demangled base
// function name only, so template instantiations and differing call lines
// within one function collapse together.
func (t Trace) FoldKey() string {
	var b strings.Builder
	for i, f := range t {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(Demangle(f.Function))
	}
	return b.String()
}

// String renders the trace one frame per line, innermost first.
func (t Trace) String() string {
	var b strings.Builder
	for i, f := range t {
		fmt.Fprintf(&b, "#%d %s\n", i, f)
	}
	return b.String()
}

// Clone returns an independent copy of the trace.
func (t Trace) Clone() Trace {
	out := make(Trace, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two traces are frame-for-frame identical.
func (t Trace) Equal(u Trace) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Demangle strips template parameter lists from a C++-style function name:
// "thrust::detail::storage<int, alloc<int>>::allocate" becomes
// "thrust::detail::storage::allocate". §3.5.2: "Template function calls with
// the same function name with instances that differ only by template
// parameter types often are the same function in source code." Angle
// brackets appearing in operator names (operator<, operator<<, operator->)
// are preserved.
func Demangle(name string) string {
	var b strings.Builder
	depth := 0
	i := 0
	for i < len(name) {
		// Keep operator names intact, including any <, > they contain.
		if depth == 0 && strings.HasPrefix(name[i:], "operator") {
			j := i + len("operator")
			for j < len(name) && strings.ContainsRune("<>=!+-*/%&|^~[]", rune(name[j])) {
				j++
			}
			b.WriteString(name[i:j])
			i = j
			continue
		}
		c := name[i]
		switch c {
		case '<':
			depth++
		case '>':
			if depth > 0 {
				depth--
			} else {
				b.WriteByte(c)
			}
		default:
			if depth == 0 {
				b.WriteByte(c)
			}
		}
		i++
	}
	return b.String()
}

// Stack is the live call stack of the simulated application thread.
type Stack struct {
	frames  []Frame
	depthHW int // high-water mark, for diagnostics

	// Shared-snapshot interning. Applications sit in the same loop for
	// thousands of driver calls, so the same stack is snapshotted over and
	// over; interning makes the steady-state cost of SharedSnapshot one
	// hash of the frames instead of one allocation per traced call.
	version     uint64           // bumped by every Push/Pop/SetLine
	snapVersion uint64           // stack version snapTrace was taken at
	snapTrace   Trace            // memoized snapshot for snapVersion
	interned    map[uint64][]Trace // frame-content hash -> traces (collision chain)
}

// New returns an empty stack.
func New() *Stack { return &Stack{} }

// Push enters a function. The line records the position within the *caller*
// semantics used by the app framework: the declaration site of the callee.
func (s *Stack) Push(function, file string, line int) {
	s.frames = append(s.frames, Frame{Function: function, File: file, Line: line})
	if len(s.frames) > s.depthHW {
		s.depthHW = len(s.frames)
	}
	s.version++
}

// Pop leaves the current function. Popping an empty stack is a framework
// bug and panics.
func (s *Stack) Pop() {
	if len(s.frames) == 0 {
		panic("callstack: pop of empty stack")
	}
	s.frames = s.frames[:len(s.frames)-1]
	s.version++
}

// SetLine updates the source line of the innermost frame, modelling the
// program counter advancing within a function between driver calls.
func (s *Stack) SetLine(line int) {
	if len(s.frames) == 0 {
		panic("callstack: SetLine with empty stack")
	}
	s.frames[len(s.frames)-1].Line = line
	s.version++
}

// Depth returns the current nesting depth.
func (s *Stack) Depth() int { return len(s.frames) }

// MaxDepth returns the deepest nesting observed.
func (s *Stack) MaxDepth() int { return s.depthHW }

// Snapshot returns the current trace, innermost frame first.
func (s *Stack) Snapshot() Trace {
	t := make(Trace, len(s.frames))
	for i := range s.frames {
		t[i] = s.frames[len(s.frames)-1-i]
	}
	return t
}

// SharedSnapshot returns the current trace, innermost frame first, interned:
// repeated snapshots of an identical stack return the *same* Trace value.
// The returned trace is shared and must be treated as immutable — consumers
// that need a private mutable copy should Clone it. Records holding shared
// traces serialize identically to ones holding private copies.
func (s *Stack) SharedSnapshot() Trace {
	if s.snapVersion == s.version && s.snapTrace != nil {
		return s.snapTrace
	}
	h := s.frameHash()
	if s.interned == nil {
		s.interned = make(map[uint64][]Trace)
	}
	for _, t := range s.interned[h] {
		if s.matches(t) {
			s.snapTrace = t
			s.snapVersion = s.version
			return t
		}
	}
	t := s.Snapshot()
	if len(t) == 0 {
		t = emptyTrace
	}
	s.interned[h] = append(s.interned[h], t)
	s.snapTrace = t
	s.snapVersion = s.version
	return t
}

// emptyTrace is the shared snapshot of an empty stack; non-nil so it
// serializes exactly like the zero-length Trace Snapshot returns.
var emptyTrace = make(Trace, 0)

// frameHash is an FNV-1a hash over the live frames, cheap enough to compute
// per snapshot without allocating.
func (s *Stack) frameHash() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := range s.frames {
		f := &s.frames[i]
		for _, str := range [2]string{f.Function, f.File} {
			for j := 0; j < len(str); j++ {
				h = (h ^ uint64(str[j])) * prime
			}
			h = (h ^ 0xff) * prime
		}
		h = (h ^ uint64(f.Line)) * prime
	}
	return h
}

// matches reports whether t equals the current stack rendered
// innermost-first.
func (s *Stack) matches(t Trace) bool {
	if len(t) != len(s.frames) {
		return false
	}
	for i := range t {
		if t[i] != s.frames[len(s.frames)-1-i] {
			return false
		}
	}
	return true
}

// Current returns the innermost frame without copying the whole stack.
func (s *Stack) Current() Frame {
	if len(s.frames) == 0 {
		return Frame{}
	}
	return s.frames[len(s.frames)-1]
}
