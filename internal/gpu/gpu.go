// Package gpu is a discrete-event simulator for a CUDA-class accelerator.
//
// The device executes work asynchronously on streams: each stream is a FIFO
// of operations (kernels, memory copies, memsets), every operation occupies
// a contiguous span of virtual time, and the legacy default stream
// serializes against all other streams exactly as CUDA's NULL stream does.
// The CPU side (package cuda) enqueues operations and, when an API call must
// block, advances the shared virtual clock to the device completion time.
//
// Diogenes never inspects the GPU directly — it infers everything from
// CPU-side wait durations — so the simulator's job is to produce the same
// *timing structure* a real device produces: asynchronous launches that
// return immediately, transfers whose duration scales with size, and
// synchronizations whose cost is however much queued work remains.
package gpu

import (
	"fmt"
	"sort"

	"diogenes/internal/simtime"
)

// StreamID identifies a stream. LegacyStream is the CUDA NULL stream.
type StreamID int

// LegacyStream is the default (NULL) stream, which synchronizes with every
// other stream on the device.
const LegacyStream StreamID = 0

// OpKind classifies device operations.
type OpKind uint8

// Operation kinds.
const (
	OpKernel OpKind = iota
	OpCopyH2D
	OpCopyD2H
	OpCopyD2D
	OpMemset
)

// String names the kind using CUDA vocabulary.
func (k OpKind) String() string {
	switch k {
	case OpKernel:
		return "kernel"
	case OpCopyH2D:
		return "memcpy HtoD"
	case OpCopyD2H:
		return "memcpy DtoH"
	case OpCopyD2D:
		return "memcpy DtoD"
	case OpMemset:
		return "memset"
	default:
		return fmt.Sprintf("OpKind(%d)", k)
	}
}

// Op is one operation on the device timeline.
type Op struct {
	Seq     int
	Kind    OpKind
	Name    string
	Stream  StreamID
	Bytes   int
	Enqueue simtime.Time
	Start   simtime.Time
	End     simtime.Time // simtime.Infinity for a never-completing kernel
}

// Duration returns the operation's device-side duration.
func (o *Op) Duration() simtime.Duration {
	if o.End == simtime.Infinity {
		return simtime.Duration(simtime.Infinity)
	}
	return o.End.Sub(o.Start)
}

// Config sets the device's performance characteristics. The defaults are
// loosely modelled on the Pascal-class GPUs of LLNL's Ray cluster (§5): a
// PCIe/NVLink-ish interconnect and microsecond-scale launch costs.
type Config struct {
	// H2DBytesPerUS and D2HBytesPerUS are transfer throughputs in bytes
	// per microsecond of virtual time.
	H2DBytesPerUS int
	D2HBytesPerUS int
	// CopyLatency is the fixed device-side setup cost of any transfer.
	CopyLatency simtime.Duration
	// KernelQueueLatency is the device-side delay between an enqueue and
	// the earliest possible start when the stream is idle.
	KernelQueueLatency simtime.Duration
	// MemsetBytesPerUS is the device-side fill throughput.
	MemsetBytesPerUS int
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
}

// DefaultConfig returns the configuration used by the modelled applications.
func DefaultConfig() Config {
	return Config{
		H2DBytesPerUS:      11000, // ~11 GB/s
		D2HBytesPerUS:      12000, // ~12 GB/s
		CopyLatency:        8 * simtime.Microsecond,
		KernelQueueLatency: 3 * simtime.Microsecond,
		MemsetBytesPerUS:   80000,
		MemoryBytes:        16 << 30, // 16 GiB
	}
}

type stream struct {
	id      StreamID
	readyAt simtime.Time
}

// Device is one simulated GPU.
type Device struct {
	clock   *simtime.Clock
	cfg     Config
	streams map[StreamID]*stream
	// legacyFence is the completion time of the most recent legacy-stream
	// operation; non-legacy streams may not start work before it.
	legacyFence simtime.Time
	ops         []*Op
	nextSeq     int
	mem         *devAllocator
}

// New creates a device sharing the given CPU clock.
func New(clock *simtime.Clock, cfg Config) *Device {
	d := &Device{
		clock:   clock,
		cfg:     cfg,
		streams: map[StreamID]*stream{LegacyStream: {id: LegacyStream}},
		mem:     newDevAllocator(cfg.MemoryBytes),
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// CreateStream registers a new non-legacy stream and returns its id.
func (d *Device) CreateStream() StreamID {
	id := StreamID(len(d.streams))
	d.streams[id] = &stream{id: id}
	return id
}

// StreamExists reports whether id names a known stream.
func (d *Device) StreamExists(id StreamID) bool {
	_, ok := d.streams[id]
	return ok
}

func (d *Device) stream(id StreamID) *stream {
	s, ok := d.streams[id]
	if !ok {
		panic(fmt.Sprintf("gpu: unknown stream %d", id))
	}
	return s
}

// startTime computes the earliest start for an op enqueued now on stream id,
// honouring FIFO order within the stream and legacy-stream serialization.
func (d *Device) startTime(id StreamID, queueLatency simtime.Duration) simtime.Time {
	earliest := d.clock.Now().Add(queueLatency)
	s := d.stream(id)
	start := simtime.Max(earliest, s.readyAt)
	if id == LegacyStream {
		// The NULL stream waits for every stream on the device.
		for _, other := range d.streams {
			start = simtime.Max(start, other.readyAt)
		}
	} else {
		start = simtime.Max(start, d.legacyFence)
	}
	return start
}

func (d *Device) record(op *Op, id StreamID) *Op {
	op.Seq = d.nextSeq
	d.nextSeq++
	s := d.stream(id)
	s.readyAt = op.End
	if id == LegacyStream {
		d.legacyFence = op.End
	}
	d.ops = append(d.ops, op)
	return op
}

// EnqueueKernel queues a kernel of the given device duration. A duration of
// simtime.Duration(simtime.Infinity) models the never-completing kernel used
// by the synchronization-function discovery test.
func (d *Device) EnqueueKernel(id StreamID, name string, dur simtime.Duration) *Op {
	start := d.startTime(id, d.cfg.KernelQueueLatency)
	end := start.Add(dur)
	if dur == simtime.Duration(simtime.Infinity) {
		end = simtime.Infinity
	}
	return d.record(&Op{
		Kind: OpKernel, Name: name, Stream: id,
		Enqueue: d.clock.Now(), Start: start, End: end,
	}, id)
}

// CopyDuration returns the device-side duration of a transfer of n bytes.
func (d *Device) CopyDuration(kind OpKind, n int) simtime.Duration {
	bw := d.cfg.H2DBytesPerUS
	switch kind {
	case OpCopyD2H:
		bw = d.cfg.D2HBytesPerUS
	case OpCopyD2D:
		bw = d.cfg.H2DBytesPerUS * 4 // on-device copies are much faster
	}
	if bw <= 0 {
		panic("gpu: zero transfer bandwidth")
	}
	t := simtime.Duration(n) * simtime.Microsecond / simtime.Duration(bw)
	return d.cfg.CopyLatency + t
}

// EnqueueCopy queues a transfer of n bytes.
func (d *Device) EnqueueCopy(id StreamID, kind OpKind, name string, n int) *Op {
	if kind != OpCopyH2D && kind != OpCopyD2H && kind != OpCopyD2D {
		panic(fmt.Sprintf("gpu: EnqueueCopy with kind %v", kind))
	}
	start := d.startTime(id, d.cfg.CopyLatency/2)
	end := start.Add(d.CopyDuration(kind, n))
	return d.record(&Op{
		Kind: kind, Name: name, Stream: id, Bytes: n,
		Enqueue: d.clock.Now(), Start: start, End: end,
	}, id)
}

// EnqueueMemset queues a device-side fill of n bytes.
func (d *Device) EnqueueMemset(id StreamID, name string, n int) *Op {
	start := d.startTime(id, d.cfg.KernelQueueLatency)
	dur := d.cfg.CopyLatency + simtime.Duration(n)*simtime.Microsecond/simtime.Duration(d.cfg.MemsetBytesPerUS)
	end := start.Add(dur)
	return d.record(&Op{
		Kind: OpMemset, Name: name, Stream: id, Bytes: n,
		Enqueue: d.clock.Now(), Start: start, End: end,
	}, id)
}

// StreamBusyUntil returns the completion time of all work queued on the
// stream. A stream with no pending work reports a time in the past.
func (d *Device) StreamBusyUntil(id StreamID) simtime.Time {
	return d.stream(id).readyAt
}

// BusyUntil returns the completion time of all work queued on the device.
func (d *Device) BusyUntil() simtime.Time {
	var t simtime.Time
	for _, s := range d.streams {
		t = simtime.Max(t, s.readyAt)
	}
	return t
}

// Ops returns all recorded device operations in enqueue order. The slice is
// shared; callers must not modify it.
func (d *Device) Ops() []*Op { return d.ops }

// OpCount returns the number of device operations executed.
func (d *Device) OpCount() int { return len(d.ops) }

// BusySpans returns the merged intervals during which at least one stream
// was executing, up to horizon. Infinite kernels are truncated at horizon.
func (d *Device) BusySpans(horizon simtime.Time) []Span {
	spans := make([]Span, 0, len(d.ops))
	for _, op := range d.ops {
		s, e := op.Start, op.End
		if s >= horizon {
			continue
		}
		if e > horizon {
			e = horizon
		}
		if e > s {
			spans = append(spans, Span{Start: s, End: e})
		}
	}
	return MergeSpans(spans)
}

// BusyTime returns total device-busy virtual time up to horizon.
func (d *Device) BusyTime(horizon simtime.Time) simtime.Duration {
	var total simtime.Duration
	for _, s := range d.BusySpans(horizon) {
		total += s.End.Sub(s.Start)
	}
	return total
}

// IdleTime returns total device-idle virtual time up to horizon.
func (d *Device) IdleTime(horizon simtime.Time) simtime.Duration {
	return simtime.Duration(horizon) - simtime.Duration(d.BusyTime(horizon))
}

// Span is a half-open interval of virtual time.
type Span struct {
	Start simtime.Time
	End   simtime.Time
}

// MergeSpans merges overlapping or adjacent spans, returning a sorted,
// disjoint set.
func MergeSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := sorted[:1]
	for _, s := range sorted[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End {
			if s.End > last.End {
				last.End = s.End
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}
