package gpu

import (
	"errors"
	"testing"
	"testing/quick"

	"diogenes/internal/simtime"
)

func newDev() (*simtime.Clock, *Device) {
	c := simtime.NewClock()
	return c, New(c, DefaultConfig())
}

func TestKernelRunsAfterEnqueue(t *testing.T) {
	c, d := newDev()
	c.Advance(10 * simtime.Microsecond)
	op := d.EnqueueKernel(LegacyStream, "k", 50*simtime.Microsecond)
	if op.Enqueue != c.Now() {
		t.Fatalf("Enqueue = %v, want now", op.Enqueue)
	}
	if op.Start < op.Enqueue {
		t.Fatal("kernel started before enqueue")
	}
	if op.Duration() != 50*simtime.Microsecond {
		t.Fatalf("Duration = %v", op.Duration())
	}
	if d.StreamBusyUntil(LegacyStream) != op.End {
		t.Fatal("StreamBusyUntil != op end")
	}
}

func TestStreamFIFO(t *testing.T) {
	_, d := newDev()
	a := d.EnqueueKernel(LegacyStream, "a", 100*simtime.Microsecond)
	b := d.EnqueueKernel(LegacyStream, "b", 10*simtime.Microsecond)
	if b.Start < a.End {
		t.Fatalf("second op started %v before first finished %v", b.Start, a.End)
	}
}

func TestIndependentStreamsOverlap(t *testing.T) {
	c, d := newDev()
	s1, s2 := d.CreateStream(), d.CreateStream()
	// Prime the legacy fence at zero; only non-legacy streams used.
	a := d.EnqueueKernel(s1, "a", 100*simtime.Microsecond)
	b := d.EnqueueKernel(s2, "b", 100*simtime.Microsecond)
	if b.Start >= a.End {
		t.Fatalf("independent streams serialized: a ends %v, b starts %v", a.End, b.Start)
	}
	_ = c
}

func TestLegacyStreamSerializesAll(t *testing.T) {
	_, d := newDev()
	s1 := d.CreateStream()
	a := d.EnqueueKernel(s1, "a", 100*simtime.Microsecond)
	// Legacy op must wait for s1's work.
	l := d.EnqueueKernel(LegacyStream, "l", 10*simtime.Microsecond)
	if l.Start < a.End {
		t.Fatalf("legacy op started %v before stream op ended %v", l.Start, a.End)
	}
	// And later non-legacy ops must wait for the legacy op.
	b := d.EnqueueKernel(s1, "b", 10*simtime.Microsecond)
	if b.Start < l.End {
		t.Fatalf("stream op started %v before legacy fence %v", b.Start, l.End)
	}
}

func TestNeverCompletingKernel(t *testing.T) {
	_, d := newDev()
	op := d.EnqueueKernel(LegacyStream, "spin", simtime.Duration(simtime.Infinity))
	if op.End != simtime.Infinity {
		t.Fatalf("End = %v, want Infinity", op.End)
	}
	if d.BusyUntil() != simtime.Infinity {
		t.Fatal("device should be busy forever")
	}
}

func TestCopyDurationScalesWithSize(t *testing.T) {
	_, d := newDev()
	small := d.CopyDuration(OpCopyH2D, 1024)
	big := d.CopyDuration(OpCopyH2D, 10*1024*1024)
	if big <= small {
		t.Fatalf("big copy %v not slower than small %v", big, small)
	}
	if small < d.Config().CopyLatency {
		t.Fatal("copy faster than fixed latency")
	}
}

func TestEnqueueCopyKinds(t *testing.T) {
	_, d := newDev()
	op := d.EnqueueCopy(LegacyStream, OpCopyD2H, "c", 4096)
	if op.Kind != OpCopyD2H || op.Bytes != 4096 {
		t.Fatalf("op = %+v", op)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnqueueCopy with kernel kind did not panic")
		}
	}()
	d.EnqueueCopy(LegacyStream, OpKernel, "bad", 1)
}

func TestBusyUntilAcrossStreams(t *testing.T) {
	_, d := newDev()
	s1 := d.CreateStream()
	d.EnqueueKernel(s1, "a", 100*simtime.Microsecond)
	long := d.EnqueueKernel(s1, "b", 500*simtime.Microsecond)
	if d.BusyUntil() != long.End {
		t.Fatalf("BusyUntil = %v, want %v", d.BusyUntil(), long.End)
	}
}

func TestBusyAndIdleTime(t *testing.T) {
	c, d := newDev()
	op := d.EnqueueKernel(LegacyStream, "k", 100*simtime.Microsecond)
	horizon := op.End.Add(50 * simtime.Microsecond)
	busy := d.BusyTime(horizon)
	if busy != 100*simtime.Microsecond {
		t.Fatalf("BusyTime = %v, want 100µs", busy)
	}
	idle := d.IdleTime(horizon)
	if idle != simtime.Duration(horizon)-100*simtime.Microsecond {
		t.Fatalf("IdleTime = %v", idle)
	}
	_ = c
}

func TestBusySpansTruncatesInfinite(t *testing.T) {
	_, d := newDev()
	d.EnqueueKernel(LegacyStream, "spin", simtime.Duration(simtime.Infinity))
	spans := d.BusySpans(simtime.Time(simtime.Second))
	if len(spans) != 1 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].End != simtime.Time(simtime.Second) {
		t.Fatalf("span end = %v, want horizon", spans[0].End)
	}
}

func TestMergeSpans(t *testing.T) {
	in := []Span{
		{Start: 10, End: 20},
		{Start: 15, End: 30},
		{Start: 40, End: 50},
		{Start: 50, End: 60}, // adjacent merges
		{Start: 5, End: 8},
	}
	out := MergeSpans(in)
	want := []Span{{Start: 5, End: 8}, {Start: 10, End: 30}, {Start: 40, End: 60}}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("span %d = %v, want %v", i, out[i], want[i])
		}
	}
	if MergeSpans(nil) != nil {
		t.Fatal("MergeSpans(nil) != nil")
	}
}

func TestUnknownStreamPanics(t *testing.T) {
	_, d := newDev()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown stream did not panic")
		}
	}()
	d.EnqueueKernel(StreamID(42), "k", simtime.Microsecond)
}

func TestStreamExists(t *testing.T) {
	_, d := newDev()
	if !d.StreamExists(LegacyStream) {
		t.Fatal("legacy stream missing")
	}
	s := d.CreateStream()
	if !d.StreamExists(s) || d.StreamExists(s+100) {
		t.Fatal("StreamExists wrong")
	}
}

func TestOpKindString(t *testing.T) {
	if OpKernel.String() != "kernel" || OpCopyH2D.String() != "memcpy HtoD" ||
		OpCopyD2H.String() != "memcpy DtoH" || OpCopyD2D.String() != "memcpy DtoD" ||
		OpMemset.String() != "memset" {
		t.Fatal("OpKind strings wrong")
	}
}

func TestMallocFree(t *testing.T) {
	_, d := newDev()
	b, err := d.Malloc(1<<20, "weights")
	if err != nil {
		t.Fatal(err)
	}
	if b.Base() == 0 || b.Size() != 1<<20 || b.Label() != "weights" {
		t.Fatalf("buf = %+v", b)
	}
	st := d.MemStats()
	if st.LiveBytes != 1<<20 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := d.FreeBuf(b); err != nil {
		t.Fatal(err)
	}
	st = d.MemStats()
	if st.LiveBytes != 0 || st.Frees != 1 || st.PeakBytes != 1<<20 {
		t.Fatalf("stats after free = %+v", st)
	}
	if err := d.FreeBuf(b); !errors.Is(err, ErrBadDevPtr) {
		t.Fatalf("double free: %v", err)
	}
}

func TestMallocOOM(t *testing.T) {
	c := simtime.NewClock()
	cfg := DefaultConfig()
	cfg.MemoryBytes = 1024
	d := New(c, cfg)
	if _, err := d.Malloc(2048, "big"); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("OOM not reported: %v", err)
	}
	if _, err := d.Malloc(-1, "neg"); err == nil {
		t.Fatal("negative Malloc succeeded")
	}
}

func TestDevReadWriteFill(t *testing.T) {
	_, d := newDev()
	b, _ := d.Malloc(64, "buf")
	if err := d.DevWrite(b.Base()+8, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := d.DevRead(b.Base()+8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("DevRead = %v", got)
	}
	if err := d.DevFill(b.Base(), 0xAA, 4); err != nil {
		t.Fatal(err)
	}
	got, _ = d.DevRead(b.Base(), 4)
	for _, v := range got {
		if v != 0xAA {
			t.Fatalf("DevFill byte = %#x", v)
		}
	}
}

func TestDevAccessErrors(t *testing.T) {
	_, d := newDev()
	b, _ := d.Malloc(16, "buf")
	if err := d.DevWrite(b.End(), []byte{1}); !errors.Is(err, ErrBadDevPtr) {
		t.Fatalf("write past end: %v", err)
	}
	if _, err := d.DevRead(b.Base()+10, 10); !errors.Is(err, ErrBadDevPtr) {
		t.Fatalf("straddling read: %v", err)
	}
	if err := d.DevFill(DevPtr(1), 0, 1); !errors.Is(err, ErrBadDevPtr) {
		t.Fatalf("fill unmapped: %v", err)
	}
	_ = d.FreeBuf(b)
	if _, err := d.DevRead(b.Base(), 1); !errors.Is(err, ErrBadDevPtr) {
		t.Fatalf("read after free: %v", err)
	}
}

func TestBufAt(t *testing.T) {
	_, d := newDev()
	a, _ := d.Malloc(100, "a")
	b, _ := d.Malloc(100, "b")
	if d.BufAt(a.Base()+50) != a || d.BufAt(b.Base()) != b {
		t.Fatal("BufAt missed buffer")
	}
	if d.BufAt(0) != nil {
		t.Fatal("BufAt(0) found buffer")
	}
}

func TestQuickStreamOpsNeverOverlapWithinStream(t *testing.T) {
	f := func(durs []uint16) bool {
		c := simtime.NewClock()
		d := New(c, DefaultConfig())
		var prevEnd simtime.Time
		for i, raw := range durs {
			if i > 20 {
				break
			}
			op := d.EnqueueKernel(LegacyStream, "k", simtime.Duration(raw)*simtime.Microsecond)
			if op.Start < prevEnd {
				return false
			}
			prevEnd = op.End
			c.Advance(simtime.Duration(raw%7) * simtime.Microsecond)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeSpansDisjointSorted(t *testing.T) {
	f := func(raw []uint8) bool {
		spans := make([]Span, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			s := simtime.Time(raw[i])
			e := s.Add(simtime.Duration(raw[i+1]%32) + 1)
			spans = append(spans, Span{Start: s, End: e})
		}
		out := MergeSpans(spans)
		for i := 1; i < len(out); i++ {
			if out[i].Start <= out[i-1].End {
				return false
			}
		}
		// Total coverage must be >= the longest single input span.
		var maxIn, total simtime.Duration
		for _, s := range spans {
			if d := s.End.Sub(s.Start); d > maxIn {
				maxIn = d
			}
		}
		for _, s := range out {
			total += s.End.Sub(s.Start)
		}
		return total >= maxIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
