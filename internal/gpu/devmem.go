package gpu

import (
	"errors"
	"fmt"
	"sort"
)

// DevPtr is an address in device memory. The device and host address spaces
// are disjoint; DevPtr 0 is the null device pointer.
type DevPtr uint64

// ErrOutOfMemory is returned when an allocation exceeds device capacity.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// ErrBadDevPtr is returned for accesses to unallocated or freed device
// memory.
var ErrBadDevPtr = errors.New("gpu: invalid device pointer")

// DevBuf is an allocation in device memory.
type DevBuf struct {
	base  DevPtr
	size  int
	data  []byte
	freed bool
	label string
}

// Base returns the buffer's device address.
func (b *DevBuf) Base() DevPtr { return b.base }

// Size returns the buffer length in bytes.
func (b *DevBuf) Size() int { return b.size }

// Label returns the allocation label.
func (b *DevBuf) Label() string { return b.label }

// End returns one past the buffer's last address.
func (b *DevBuf) End() DevPtr { return b.base + DevPtr(b.size) }

// Freed reports whether the buffer has been released.
func (b *DevBuf) Freed() bool { return b.freed }

type devAllocator struct {
	capacity int64
	live     int64
	peak     int64
	next     DevPtr
	bufs     []*DevBuf // sorted by base
	allocs   int64
	frees    int64
}

func newDevAllocator(capacity int64) *devAllocator {
	return &devAllocator{capacity: capacity, next: 4096}
}

// Malloc allocates n bytes of device memory.
func (d *Device) Malloc(n int, label string) (*DevBuf, error) {
	a := d.mem
	if n <= 0 {
		return nil, fmt.Errorf("gpu: Malloc size %d", n)
	}
	if a.live+int64(n) > a.capacity {
		return nil, fmt.Errorf("%w: need %d, %d live of %d", ErrOutOfMemory, n, a.live, a.capacity)
	}
	b := &DevBuf{base: a.next, size: n, data: make([]byte, n), label: label}
	a.next += DevPtr(n)
	// Keep 256-byte alignment like cudaMalloc.
	a.next = (a.next + 255) / 256 * 256
	a.live += int64(n)
	if a.live > a.peak {
		a.peak = a.live
	}
	a.bufs = append(a.bufs, b)
	a.allocs++
	return b, nil
}

// FreeBuf releases a device allocation.
func (d *Device) FreeBuf(b *DevBuf) error {
	if b.freed {
		return fmt.Errorf("%w: double free of %q", ErrBadDevPtr, b.label)
	}
	b.freed = true
	b.data = nil
	d.mem.live -= int64(b.size)
	d.mem.frees++
	return nil
}

// BufAt returns the live buffer containing ptr, or nil.
func (d *Device) BufAt(ptr DevPtr) *DevBuf {
	a := d.mem
	i := sort.Search(len(a.bufs), func(i int) bool { return a.bufs[i].End() > ptr })
	if i < len(a.bufs) && ptr >= a.bufs[i].base && !a.bufs[i].freed {
		return a.bufs[i]
	}
	return nil
}

// DevWrite stores p at device address ptr (the landing side of an H2D copy
// or a kernel's output).
func (d *Device) DevWrite(ptr DevPtr, p []byte) error {
	b := d.BufAt(ptr)
	if b == nil {
		return fmt.Errorf("%w: write %#x", ErrBadDevPtr, ptr)
	}
	if ptr+DevPtr(len(p)) > b.End() {
		return fmt.Errorf("%w: write past end of %q", ErrBadDevPtr, b.label)
	}
	copy(b.data[int(ptr-b.base):], p)
	return nil
}

// DevRead loads n bytes from device address ptr.
func (d *Device) DevRead(ptr DevPtr, n int) ([]byte, error) {
	b := d.BufAt(ptr)
	if b == nil {
		return nil, fmt.Errorf("%w: read %#x", ErrBadDevPtr, ptr)
	}
	if ptr+DevPtr(n) > b.End() {
		return nil, fmt.Errorf("%w: read past end of %q", ErrBadDevPtr, b.label)
	}
	out := make([]byte, n)
	copy(out, b.data[int(ptr-b.base):])
	return out, nil
}

// DevReadView is DevRead without the copy: it returns a slice aliasing the
// buffer's live bytes. Callers must treat it as read-only and must not
// retain it past the operation that requested it — later DevWrite, DevFill
// or FreeBuf calls change or invalidate the contents.
func (d *Device) DevReadView(ptr DevPtr, n int) ([]byte, error) {
	b := d.BufAt(ptr)
	if b == nil {
		return nil, fmt.Errorf("%w: read %#x", ErrBadDevPtr, ptr)
	}
	if ptr+DevPtr(n) > b.End() {
		return nil, fmt.Errorf("%w: read past end of %q", ErrBadDevPtr, b.label)
	}
	off := int(ptr - b.base)
	return b.data[off : off+n : off+n], nil
}

// DevFill sets n bytes at ptr to value v (memset landing).
func (d *Device) DevFill(ptr DevPtr, v byte, n int) error {
	b := d.BufAt(ptr)
	if b == nil {
		return fmt.Errorf("%w: fill %#x", ErrBadDevPtr, ptr)
	}
	if ptr+DevPtr(n) > b.End() {
		return fmt.Errorf("%w: fill past end of %q", ErrBadDevPtr, b.label)
	}
	off := int(ptr - b.base)
	for i := 0; i < n; i++ {
		b.data[off+i] = v
	}
	return nil
}

// MemStats reports allocator activity.
type MemStats struct {
	LiveBytes int64
	PeakBytes int64
	Allocs    int64
	Frees     int64
}

// MemStats returns current device-memory statistics.
func (d *Device) MemStats() MemStats {
	return MemStats{
		LiveBytes: d.mem.live,
		PeakBytes: d.mem.peak,
		Allocs:    d.mem.allocs,
		Frees:     d.mem.frees,
	}
}
