package ffm

import (
	"fmt"
	"sort"
	"strings"

	"diogenes/internal/ffm/graph"
	"diogenes/internal/simtime"
)

// SequenceEntry is one numbered line of a static sequence listing — a
// single program point aggregating every dynamic instance of the operation
// (Figure 6's "10. cudaFree in als.cpp at line 856").
type SequenceEntry struct {
	Index   int              // 1-based position in the listing
	Label   string           // "cudaFree in als.cpp at line 856"
	Key     string           // single-point identity
	Count   int              // dynamic instances aggregated
	Benefit simtime.Duration // summed realized benefit of the instances
	Problem graph.Problem
}

// StaticSequence is a problem sequence folded over the application's loop
// structure: the same static run of problematic operations typically occurs
// once per loop iteration, and the tool presents it as one numbered listing
// whose benefit sums all dynamic instances (§5.1: the cumf_als sequence of
// 23 operations executed ~5000 times).
type StaticSequence struct {
	Signature string
	Entries   []SequenceEntry
	Instances int              // dynamic occurrences of the sequence
	Benefit   simtime.Duration // total over all instances (carry-forward rule)
	Syncs     int              // problem-type counts over entries
	Transfers int

	nodes []*graph.Node // all member nodes across instances, chain order
}

func pointKey(n *graph.Node) string { return n.Func + "|" + n.Stack.Key() }

func pointLabel(n *graph.Node) string {
	leaf := n.Stack.Leaf()
	if leaf.File == "" {
		return n.Func
	}
	return fmt.Sprintf("%s in %s at line %d", n.Func, leaf.File, leaf.Line)
}

// StaticSequences folds the analysis' dynamic sequences by their signature
// (the ordered list of program points) and evaluates each fold's combined
// benefit with the carry-forward rule. Results are sorted by descending
// benefit.
func (a *Analysis) StaticSequences() []StaticSequence {
	type fold struct {
		seq       *StaticSequence
		perPoint  map[string]int // point key -> index into seq.Entries
		instances []graph.Group
	}
	folds := make(map[string]*fold)
	var order []string

	for _, dyn := range a.Sequences {
		var sig strings.Builder
		for _, n := range dyn.Nodes {
			sig.WriteString(pointKey(n))
			sig.WriteByte('\n')
		}
		key := sig.String()
		f, ok := folds[key]
		if !ok {
			f = &fold{
				seq:      &StaticSequence{Signature: key},
				perPoint: make(map[string]int),
			}
			for _, n := range dyn.Nodes {
				pk := pointKey(n)
				if _, seen := f.perPoint[pk]; !seen {
					f.seq.Entries = append(f.seq.Entries, SequenceEntry{
						Index:   len(f.seq.Entries) + 1,
						Label:   pointLabel(n),
						Key:     pk,
						Problem: n.Problem,
					})
					f.perPoint[pk] = len(f.seq.Entries) - 1
				}
			}
			folds[key] = f
			order = append(order, key)
		}
		f.instances = append(f.instances, dyn)
	}

	out := make([]StaticSequence, 0, len(folds))
	eval := graph.NewSequenceEvaluator(a.Graph)
	for _, key := range order {
		f := folds[key]
		s := f.seq
		s.Instances = len(f.instances)
		for _, dyn := range f.instances {
			s.nodes = append(s.nodes, dyn.Nodes...)
		}
		res := eval.Evaluate(s.nodes, a.Opts.Graph)
		s.Benefit = res.Total
		for _, nb := range res.PerNode {
			if idx, ok := f.perPoint[pointKey(nb.Node)]; ok {
				s.Entries[idx].Count++
				s.Entries[idx].Benefit += nb.Benefit
			}
		}
		for _, e := range s.Entries {
			if e.Problem == graph.UnnecessaryTransfer {
				s.Transfers++
			} else {
				s.Syncs++
			}
		}
		out = append(out, *s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Benefit > out[j].Benefit })
	return out
}

// SubsequenceBenefit re-evaluates static entries [from, to] (1-based,
// inclusive) of a static sequence across all its dynamic instances — the
// §5.1 subsequence feature (Figure 8) — with no further data collection.
func (a *Analysis) SubsequenceBenefit(s StaticSequence, from, to int) (StaticSequence, error) {
	if from < 1 || to > len(s.Entries) || from > to {
		return StaticSequence{}, fmt.Errorf("ffm: subsequence [%d,%d] out of range 1..%d", from, to, len(s.Entries))
	}
	wanted := make(map[string]bool)
	for _, e := range s.Entries[from-1 : to] {
		wanted[e.Key] = true
	}
	var members []*graph.Node
	for _, n := range s.nodes {
		if wanted[pointKey(n)] {
			members = append(members, n)
		}
	}
	res := graph.SequenceBenefit(a.Graph, members, a.Opts.Graph)
	sub := StaticSequence{
		Signature: fmt.Sprintf("%s[%d:%d]", s.Signature, from, to),
		Entries:   append([]SequenceEntry(nil), s.Entries[from-1:to]...),
		Instances: s.Instances,
		Benefit:   res.Total,
		nodes:     members,
	}
	for _, e := range sub.Entries {
		if e.Problem == graph.UnnecessaryTransfer {
			sub.Transfers++
		} else {
			sub.Syncs++
		}
	}
	return sub, nil
}
