package ffm

import (
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// OverlapStats summarizes how well the application overlaps CPU and GPU
// work — the quantity Diogenes' fixes improve ("moved (or removed) to
// improve CPU/GPU overlap safely", §1). All figures come from the
// uninstrumented reference run.
type OverlapStats struct {
	ExecTime simtime.Duration
	// GPUBusy is total device-busy time (union over streams and devices).
	GPUBusy simtime.Duration
	// GPUIdle is ExecTime - GPUBusy.
	GPUIdle simtime.Duration
	// CPUBlocked is the total synchronization wait on the CPU side, from
	// the analysed trace.
	CPUBlocked simtime.Duration
	// GPUUtilization is GPUBusy / ExecTime (0..1, can exceed 1 with
	// multiple devices).
	GPUUtilization float64
	// BlockedShare is CPUBlocked / ExecTime.
	BlockedShare float64
}

// Overlap computes the report's CPU/GPU overlap statistics.
func (r *Report) Overlap() OverlapStats {
	horizon := simtime.Time(r.UninstrumentedTime)
	var spans []gpu.Span
	for _, op := range r.DeviceOps {
		s, e := op.Start, op.End
		if s >= horizon {
			continue
		}
		if e > horizon {
			e = horizon
		}
		if e > s {
			spans = append(spans, gpu.Span{Start: s, End: e})
		}
	}
	var busy simtime.Duration
	for _, s := range gpu.MergeSpans(spans) {
		busy += s.End.Sub(s.Start)
	}

	var blocked simtime.Duration
	if r.Trace != nil {
		blocked = r.Trace.TotalSyncWait()
	}

	st := OverlapStats{
		ExecTime:   r.UninstrumentedTime,
		GPUBusy:    busy,
		GPUIdle:    r.UninstrumentedTime - busy,
		CPUBlocked: blocked,
	}
	if st.GPUIdle < 0 {
		st.GPUIdle = 0
	}
	if r.UninstrumentedTime > 0 {
		st.GPUUtilization = float64(busy) / float64(r.UninstrumentedTime)
		st.BlockedShare = float64(blocked) / float64(r.UninstrumentedTime)
	}
	return st
}
