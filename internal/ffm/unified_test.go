package ffm

// §5.3: "Diogenes has a limited ability to analyze applications using
// CUDA's unified memory. ... the transfer of data between CPU and GPU
// physical memory still takes place but is automatically performed by the
// GPU device driver. ... the presence of a problematic transfer would be
// hidden." These tests pin that limitation down: an application that would
// produce duplicate-transfer findings with explicit copies produces none
// when the same data flows through managed memory — while the *indirect*
// detection route the paper used on AMG (the conditional synchronization of
// cudaMemset on a unified address) still works.

import (
	"testing"

	"diogenes/internal/cuda"
	"diogenes/internal/ffm/graph"
	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// unifiedApp pushes identical content to the device every iteration. With
// explicit=true it uses cudaMemcpy (interceptable); otherwise it writes the
// managed region directly and lets the driver migrate (invisible).
type unifiedApp struct {
	iters    int
	explicit bool
}

func (a *unifiedApp) Name() string { return "unified" }

func (a *unifiedApp) Run(p *proc.Process) error {
	const n = 16 << 10
	payload := make([]byte, n)
	simtime.NewRNG(5).Bytes(payload)

	var devBuf *gpu.DevBuf
	staging := p.Host.Alloc(n, "staging")
	if err := p.Host.Poke(staging.Base(), payload); err != nil {
		return err
	}
	managed, err := p.Ctx.MallocManaged(n, "unified buffer")
	if err != nil {
		return err
	}
	if a.explicit {
		if devBuf, err = p.Ctx.Malloc(n, "explicit dev buffer"); err != nil {
			return err
		}
	}

	var runErr error
	for i := 0; i < a.iters && runErr == nil; i++ {
		p.In("push", "unified.cpp", 20, func() {
			if a.explicit {
				// Interceptable path: same bytes every iteration.
				p.At(22)
				if runErr = p.Ctx.MemcpyH2D(devBuf.Base(), staging.Base(), n); runErr != nil {
					return
				}
			} else {
				// Unified path: the CPU stores into the managed region and
				// the driver migrates pages under the covers — no driver
				// call for the tool to intercept, hash, or deduplicate.
				p.At(26)
				if runErr = p.Write(managed.Base(), payload, 26); runErr != nil {
					return
				}
			}
			p.At(30)
			if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "consume", Duration: simtime.Millisecond, Stream: gpu.LegacyStream,
			}); e != nil {
				runErr = e
				return
			}
			// Zero the accumulator on the unified address: the AMG-style
			// conditional synchronization that remains detectable.
			p.At(33)
			if runErr = p.Ctx.MemsetManaged(managed.Base(), 0, n); runErr != nil {
				return
			}
			// Refill it for the next round (post-memset content).
			if runErr = p.Host.Poke(managed.Base(), payload); runErr != nil {
				return
			}
			p.CPUWork(400 * simtime.Microsecond)
		})
	}
	return runErr
}

func runUnified(t *testing.T, explicit bool) *Report {
	t.Helper()
	rep, err := Run(&unifiedApp{iters: 6, explicit: explicit}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestExplicitTransfersAreDeduplicated(t *testing.T) {
	rep := runUnified(t, true)
	if rep.Analysis.ProblemCounts()[graph.UnnecessaryTransfer] < 5 {
		t.Fatalf("explicit path found %d duplicate transfers, want >=5 (iterations 2-6)",
			rep.Analysis.ProblemCounts()[graph.UnnecessaryTransfer])
	}
}

// TestUnifiedMemoryHidesDuplicateTransfers is the §5.3 limitation: the same
// repeated content, moved by driver-managed migration, yields zero
// duplicate-transfer findings.
func TestUnifiedMemoryHidesDuplicateTransfers(t *testing.T) {
	rep := runUnified(t, false)
	if got := rep.Analysis.ProblemCounts()[graph.UnnecessaryTransfer]; got != 0 {
		t.Fatalf("unified path produced %d duplicate-transfer findings; the"+
			" limitation should hide them all", got)
	}
}

// TestUnifiedMemoryIndirectDetection mirrors the AMG case: the conditional
// synchronization performed by cudaMemset on the unified address is still
// observed and scored, so unified-memory problems surface indirectly.
func TestUnifiedMemoryIndirectDetection(t *testing.T) {
	rep := runUnified(t, false)
	for _, s := range rep.Analysis.SavingsByFunc() {
		if s.Func == "cudaMemset" && s.Savings > 0 {
			return
		}
	}
	t.Fatal("no cudaMemset finding on the unified path")
}
