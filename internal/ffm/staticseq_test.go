package ffm

import (
	"testing"

	"diogenes/internal/callstack"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// loopedRun builds a trace of `iters` identical iterations, each containing
// two problematic frees at fixed lines, one duplicate transfer, and a
// terminating necessary synchronization.
func loopedRun(iters int) *trace.Run {
	run := &trace.Run{App: "loop", Stage: 4}
	var at simtime.Time
	seq := int64(0)
	stack := func(fn string, line int) callstack.Trace {
		return callstack.Trace{
			{Function: fn, File: "loop.cpp", Line: line},
			{Function: "main", File: "main.cpp", Line: 5},
		}
	}
	add := func(fn string, class trace.OpClass, line int, dur simtime.Duration, dup bool, accessed bool) {
		seq++
		rec := trace.Record{
			Seq: seq, Func: fn, Class: class,
			Entry: at, Exit: at.Add(dur), SyncWait: dur / 2, Scope: "implicit",
			Stack: stack("step", line), Duplicate: dup, ProtectedAccess: accessed,
		}
		run.Records = append(run.Records, rec)
		at = at.Add(dur)
	}
	gap := func(d simtime.Duration) { at = at.Add(d) }

	for i := 0; i < iters; i++ {
		add("cudaFree", trace.ClassSync, 10, simtime.Millisecond, false, false)
		gap(500 * simtime.Microsecond)
		add("cudaMemcpy", trace.ClassTransfer, 12, simtime.Millisecond, i > 0, false)
		gap(500 * simtime.Microsecond)
		add("cudaFree", trace.ClassSync, 14, simtime.Millisecond, false, false)
		gap(500 * simtime.Microsecond)
		// Necessary sync terminates the iteration's sequence.
		add("cudaMemcpy", trace.ClassSync, 20, simtime.Millisecond, false, true)
		gap(2 * simtime.Millisecond)
	}
	run.ExecTime = simtime.Duration(at)
	return run
}

func analysisFor(run *trace.Run) *Analysis {
	return Analyze(run, DefaultAnalysisOptions())
}

func TestStaticSequencesFoldIterations(t *testing.T) {
	a := analysisFor(loopedRun(10))
	seqs := a.StaticSequences()
	// All ten iterations share one static signature (iteration 1's memcpy
	// is flagged as an unnecessary sync rather than a duplicate, but the
	// program points are identical), so they fold into a single listing.
	if len(seqs) != 1 {
		t.Fatalf("static sequences = %d, want 1", len(seqs))
	}
	top := seqs[0]
	if top.Instances != 10 {
		t.Fatalf("top instances = %d, want 10", top.Instances)
	}
	if len(top.Entries) != 3 {
		t.Fatalf("entries = %d, want 3 static points", len(top.Entries))
	}
	if top.Syncs+top.Transfers != 3 {
		t.Fatalf("counts = %d sync / %d transfer", top.Syncs, top.Transfers)
	}
	for i, e := range top.Entries {
		if e.Index != i+1 {
			t.Fatalf("entry %d index = %d", i, e.Index)
		}
		if e.Count != 10 {
			t.Fatalf("entry %q count = %d, want 10", e.Label, e.Count)
		}
	}
	if top.Entries[0].Label != "cudaFree in loop.cpp at line 10" {
		t.Fatalf("entry 1 label = %q", top.Entries[0].Label)
	}
	if top.Benefit <= 0 {
		t.Fatal("no benefit")
	}
}

func TestStaticSequenceBenefitScalesWithInstances(t *testing.T) {
	small := analysisFor(loopedRun(4)).StaticSequences()
	big := analysisFor(loopedRun(8)).StaticSequences()
	if len(small) == 0 || len(big) == 0 {
		t.Fatal("missing sequences")
	}
	if big[0].Benefit <= small[0].Benefit {
		t.Fatalf("benefit did not grow with instances: %v vs %v",
			big[0].Benefit, small[0].Benefit)
	}
}

func TestSubsequenceBenefitStatic(t *testing.T) {
	a := analysisFor(loopedRun(10))
	top := a.StaticSequences()[0]
	sub, err := a.SubsequenceBenefit(top, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Entries) != 2 {
		t.Fatalf("sub entries = %d", len(sub.Entries))
	}
	if sub.Benefit <= 0 || sub.Benefit > top.Benefit {
		t.Fatalf("sub benefit %v vs full %v", sub.Benefit, top.Benefit)
	}
	if sub.Instances != top.Instances {
		t.Fatal("subsequence lost instance count")
	}
	if sub.Syncs != 1 || sub.Transfers != 1 {
		t.Fatalf("sub counts = %d/%d", sub.Syncs, sub.Transfers)
	}
	// Range validation.
	if _, err := a.SubsequenceBenefit(top, 0, 2); err == nil {
		t.Fatal("from=0 accepted")
	}
	if _, err := a.SubsequenceBenefit(top, 3, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := a.SubsequenceBenefit(top, 1, 99); err == nil {
		t.Fatal("past-end accepted")
	}
}

func TestAPIFolds(t *testing.T) {
	a := analysisFor(loopedRun(6))
	folds := a.APIFolds()
	if len(folds) == 0 {
		t.Fatal("no folds")
	}
	byFunc := map[string]APIFold{}
	for i, f := range folds {
		byFunc[f.Func] = f
		if i > 0 && f.Benefit > folds[i-1].Benefit {
			t.Fatal("folds not sorted")
		}
	}
	free, ok := byFunc["cudaFree"]
	if !ok {
		t.Fatal("no cudaFree fold")
	}
	if len(free.Children) != 1 {
		t.Fatalf("cudaFree children = %d, want 1 (all from 'step')", len(free.Children))
	}
	if free.Children[0].Base != "step" || free.Children[0].Count != 12 {
		t.Fatalf("child = %+v", free.Children[0])
	}
	if free.Percent <= 0 {
		t.Fatal("fold percent missing")
	}
}

func TestAPIFoldsMergeTemplateInstantiations(t *testing.T) {
	run := &trace.Run{App: "tmpl", ExecTime: 100 * simtime.Millisecond}
	var at simtime.Time
	for i, fn := range []string{"storage<float>::drop", "storage<double>::drop"} {
		rec := trace.Record{
			Seq: int64(i + 1), Func: "cudaFree", Class: trace.ClassSync,
			Entry: at, Exit: at.Add(simtime.Millisecond), SyncWait: simtime.Millisecond,
			Stack: callstack.Trace{{Function: fn, File: "s.h", Line: 5}},
		}
		run.Records = append(run.Records, rec)
		at = at.Add(2 * simtime.Millisecond)
	}
	a := analysisFor(run)
	folds := a.APIFolds()
	if len(folds) != 1 {
		t.Fatalf("folds = %d", len(folds))
	}
	if len(folds[0].Children) != 1 {
		t.Fatalf("template instantiations not merged: %+v", folds[0].Children)
	}
	if folds[0].Children[0].Base != "storage::drop" || folds[0].Children[0].Count != 2 {
		t.Fatalf("child = %+v", folds[0].Children[0])
	}
}
