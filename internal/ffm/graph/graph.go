// Package graph implements FFM's stage 5 analysis model (§3.5): the
// application-execution graph and the expected-benefit algorithm of
// Figure 5, together with the problem groupings of §3.5.2 (single point,
// folded function, sequence) and the subsequence refinement of §5.1.
//
// Execution is modelled as a chain of CPU nodes — CWork (CPU computation),
// CLaunch (requesting asynchronous GPU work, including transfers), CWait
// (waiting on GPU completion) — each carrying the duration of its outgoing
// CPU edge. GPU nodes (GWork/GWait) exist for reporting, but as the paper
// observes, "an effective estimate for the change in GPU idle duration ...
// can be made with only the CPU graph", and the benefit algorithms operate
// on the CPU chain alone.
package graph

import (
	"fmt"
	"sync/atomic"

	"diogenes/internal/callstack"
	"diogenes/internal/simtime"
)

// NodeType is the NType attribute of §3.5.
type NodeType uint8

// Node types. CWork/CLaunch/CWait are CPU events; GWork/GWait are GPU
// events.
const (
	CWork NodeType = iota
	CLaunch
	CWait
	GWork
	GWait
)

// String names the type using the paper's vocabulary.
func (t NodeType) String() string {
	switch t {
	case CWork:
		return "CWork"
	case CLaunch:
		return "CLaunch"
	case CWait:
		return "CWait"
	case GWork:
		return "GWork"
	case GWait:
		return "GWait"
	default:
		return fmt.Sprintf("NodeType(%d)", uint8(t))
	}
}

// Problem is the problem classification stages 3 and 4 attach to a node.
type Problem uint8

// Problem kinds.
const (
	ProblemNone Problem = iota
	UnnecessarySync
	MisplacedSync
	UnnecessaryTransfer
)

// String names the problem.
func (p Problem) String() string {
	switch p {
	case ProblemNone:
		return "none"
	case UnnecessarySync:
		return "unnecessary synchronization"
	case MisplacedSync:
		return "misplaced synchronization"
	case UnnecessaryTransfer:
		return "unnecessary transfer"
	default:
		return fmt.Sprintf("Problem(%d)", uint8(p))
	}
}

// Node is one event in the execution graph with the attributes of §3.5:
// (NType, STime, Problem, FirstUseTime), plus the duration label of its
// outgoing CPU edge and the provenance metadata the groupings need.
type Node struct {
	ID           int
	Type         NodeType
	STime        simtime.Time
	Problem      Problem
	FirstUseTime simtime.Duration
	// OutCPU is the Duration label of OutCPUEdge(N): the real time between
	// this event's start and the next CPU event. The benefit algorithms
	// mutate it.
	OutCPU simtime.Duration
	// inherited is wait time propagated onto this node by the removal of
	// an earlier synchronization (Figure 5 line 19 adds it to the next
	// synchronization's duration). It is kept separate from OutCPU so that
	// a subsequently-removed *transfer* does not claim upstream wait as
	// its own benefit; a removed synchronization's pool includes it.
	inherited simtime.Duration

	// Provenance (unset for synthetic CWork gap nodes).
	Func  string
	Stack callstack.Trace
	Seq   int64 // trace record sequence
}

// Problematic reports whether the node carries a problem classification.
func (n *Node) Problematic() bool { return n.Problem != ProblemNone }

// Graph is the execution graph. CPU holds the CPU chain in time order; GPU
// holds device events for reporting.
type Graph struct {
	CPU      []*Node
	GPU      []*Node
	ExecTime simtime.Duration

	// Cached benefit index (see index.go). Atomic so concurrent read-only
	// evaluations of one graph — e.g. two report renderings of a cached
	// analysis — can share it, and so invalidation during construction
	// (every AddCPU) costs one store, not a lock.
	idx atomic.Pointer[benefitIndex]
}

// New returns an empty graph with the given total execution time.
func New(execTime simtime.Duration) *Graph {
	return &Graph{ExecTime: execTime}
}

// AddCPU appends a CPU node to the chain, assigning its ID. It returns the
// node for further annotation.
func (g *Graph) AddCPU(n *Node) *Node {
	if n.Type != CWork && n.Type != CLaunch && n.Type != CWait {
		panic(fmt.Sprintf("graph: AddCPU with GPU node type %v", n.Type))
	}
	n.ID = len(g.CPU)
	g.CPU = append(g.CPU, n)
	g.InvalidateIndex()
	return n
}

// AddGPU appends a GPU node.
func (g *Graph) AddGPU(n *Node) *Node {
	if n.Type != GWork && n.Type != GWait {
		panic(fmt.Sprintf("graph: AddGPU with CPU node type %v", n.Type))
	}
	n.ID = len(g.GPU)
	g.GPU = append(g.GPU, n)
	return n
}

// Clone deep-copies the graph so a benefit evaluation (which mutates edge
// durations) can run without destroying the original. Subsequence
// evaluation relies on this: "the evaluation of the benefit of fixing this
// subset of operations does not require additional data collection" (§5.1).
func (g *Graph) Clone() *Graph {
	out := &Graph{ExecTime: g.ExecTime}
	// Nodes live in one backing array per chain: a clone costs three
	// allocations regardless of graph size, which matters because every
	// benefit evaluation starts with one.
	cpu := make([]Node, len(g.CPU))
	out.CPU = make([]*Node, len(g.CPU))
	for i, n := range g.CPU {
		cpu[i] = *n
		out.CPU[i] = &cpu[i]
	}
	gpuNodes := make([]Node, len(g.GPU))
	out.GPU = make([]*Node, len(g.GPU))
	for i, n := range g.GPU {
		gpuNodes[i] = *n
		out.GPU[i] = &gpuNodes[i]
	}
	return out
}

// resetFrom restores g's node values from src, which must be a graph of the
// same shape (a Clone of src). It allocates nothing, so an evaluator can
// reuse one scratch clone across many evaluations.
func (g *Graph) resetFrom(src *Graph) {
	g.InvalidateIndex()
	g.ExecTime = src.ExecTime
	for i, n := range src.CPU {
		*g.CPU[i] = *n
	}
	for i, n := range src.GPU {
		*g.GPU[i] = *n
	}
}

// ProblematicNodes returns the CPU nodes carrying a problem, in chain order.
func (g *Graph) ProblematicNodes() []*Node {
	var out []*Node
	for _, n := range g.CPU {
		if n.Problematic() {
			out = append(out, n)
		}
	}
	return out
}

// NextSyncIndex returns the index of the next CWait node strictly after
// index i, or len(g.CPU) if none. This is GetNextSyncNode of Figure 5; when
// no later synchronization exists, the virtual end-of-program node acts as
// the next synchronization with an unbounded capacity to absorb delay.
func (g *Graph) NextSyncIndex(i int) int {
	for j := i + 1; j < len(g.CPU); j++ {
		if g.CPU[j].Type == CWait {
			return j
		}
	}
	return len(g.CPU)
}

// SumDurationBetween sums the OutCPU durations of nodes strictly between
// indexes i and j whose type is CLaunch or CWork — Figure 5's
// SumDuration(CPUNodesBetween(Node, NextSync, CLaunch or CWork)). This is
// the upper bound on the GPU idle time available to absorb a removed wait.
func (g *Graph) SumDurationBetween(i, j int) simtime.Duration {
	var total simtime.Duration
	if j > len(g.CPU) {
		j = len(g.CPU)
	}
	for k := i + 1; k < j; k++ {
		if t := g.CPU[k].Type; t == CLaunch || t == CWork {
			total += g.CPU[k].OutCPU
		}
	}
	return total
}

// TotalCPU returns the sum of all CPU edge durations (the modelled critical
// path length on the CPU side).
func (g *Graph) TotalCPU() simtime.Duration {
	var total simtime.Duration
	for _, n := range g.CPU {
		total += n.OutCPU
	}
	return total
}

// Validate checks structural invariants: CPU nodes in nondecreasing STime
// order and nonnegative durations. It returns the first violation found.
func (g *Graph) Validate() error {
	var prev simtime.Time
	for i, n := range g.CPU {
		if n.STime < prev {
			return fmt.Errorf("graph: CPU node %d starts at %v before predecessor %v", i, n.STime, prev)
		}
		prev = n.STime
		if n.OutCPU < 0 {
			return fmt.Errorf("graph: CPU node %d has negative duration %v", i, n.OutCPU)
		}
		if n.Type != CWait && n.Problem == MisplacedSync {
			return fmt.Errorf("graph: node %d is %v but marked misplaced synchronization", i, n.Type)
		}
	}
	return nil
}
