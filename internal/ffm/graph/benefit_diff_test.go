package graph

import (
	"testing"
	"testing/quick"

	"diogenes/internal/simtime"
)

// buildAdversarialGraph is buildRandomGraph with the corner cases the
// incremental evaluation must get right layered in: CWait-typed unnecessary
// transfers (synchronous duplicate transfers, as BuildGraph emits), necessary
// CWaits interleaved with problems (carry destinations that are never
// processed), and misplaced synchronizations with first-use times both above
// and below their own duration.
func buildAdversarialGraph(raw []byte) *Graph {
	g := New(0)
	var at simtime.Time
	for i := 0; i+1 < len(raw) && i < 120; i += 2 {
		ty := NodeType(raw[i] % 3)
		d := simtime.Duration(raw[i+1]%50) * ms
		p := ProblemNone
		switch raw[i] % 11 {
		case 0, 1:
			ty, p = CWait, UnnecessarySync
		case 2:
			ty, p = CWait, MisplacedSync
		case 3:
			ty, p = CLaunch, UnnecessaryTransfer
		case 4:
			// Synchronous duplicate transfer: a CWait whose problem is
			// UnnecessaryTransfer. Its fix forwards inherited wait onward
			// rather than claiming it.
			ty, p = CWait, UnnecessaryTransfer
		case 5:
			ty = CWait // necessary synchronization
		}
		n := g.AddCPU(&Node{Type: ty, STime: at, OutCPU: d, Problem: p})
		if p == MisplacedSync {
			n.FirstUseTime = simtime.Duration(raw[i+1]%80) * ms
		}
		at = at.Add(d)
	}
	return g
}

func sameResult(t *testing.T, tag string, got, want Result) bool {
	t.Helper()
	if got.Total != want.Total {
		t.Logf("%s: total %v, reference %v", tag, got.Total, want.Total)
		return false
	}
	if len(got.PerNode) != len(want.PerNode) {
		t.Logf("%s: %d per-node entries, reference %d", tag, len(got.PerNode), len(want.PerNode))
		return false
	}
	for i := range got.PerNode {
		if got.PerNode[i].Node != want.PerNode[i].Node || got.PerNode[i].Benefit != want.PerNode[i].Benefit {
			t.Logf("%s: entry %d = (%d, %v), reference (%d, %v)", tag, i,
				got.PerNode[i].Node.ID, got.PerNode[i].Benefit,
				want.PerNode[i].Node.ID, want.PerNode[i].Benefit)
			return false
		}
	}
	return true
}

// TestQuickExpectedBenefitMatchesReference checks the incremental Figure-5
// evaluation against the clone-and-mutate transcription on adversarial random
// graphs, under both misplaced-sync options.
func TestQuickExpectedBenefitMatchesReference(t *testing.T) {
	for _, opts := range []Options{{}, {ClampMisplacedBenefit: true}} {
		f := func(raw []byte) bool {
			g := buildAdversarialGraph(raw)
			got := ExpectedBenefit(g, opts)
			want := referenceExpectedBenefit(g, opts)
			return sameResult(t, "expected-benefit", got, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// TestQuickSequenceBenefitMatchesReference checks the index-based sequence
// evaluation against the clone-and-rescan transcription, with the member set
// drawn pseudo-randomly from the problematic nodes (and deliberately passed
// out of chain order, duplicated, and including non-problematic members —
// all of which the evaluator must tolerate).
func TestQuickSequenceBenefitMatchesReference(t *testing.T) {
	for _, opts := range []Options{{}, {ClampMisplacedBenefit: true}} {
		f := func(raw []byte, mask uint64) bool {
			g := buildAdversarialGraph(raw)
			var members []*Node
			for _, n := range g.CPU {
				if n.Problematic() && mask&(1<<(uint(n.ID)%64)) != 0 {
					members = append(members, n)
				}
				if !n.Problematic() && mask&(1<<((uint(n.ID)+13)%64)) == 0 && len(g.CPU) > 0 {
					// Sprinkle in non-problematic members; both
					// implementations must skip them (and necessary-CWait
					// members must still not reset their own carry).
					members = append(members, n)
				}
			}
			// Reverse order plus a duplicate to prove order/dup insensitivity.
			for i, j := 0, len(members)-1; i < j; i, j = i+1, j-1 {
				members[i], members[j] = members[j], members[i]
			}
			if len(members) > 0 {
				members = append(members, members[0])
			}
			got := SequenceBenefit(g, members, opts)
			want := referenceSequenceBenefit(g, members, opts)
			return sameResult(t, "sequence-benefit", got, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
	}
}

// TestIndexInvalidatedByMutatingAccessors proves a reclassification after an
// evaluation is picked up, as report code re-evaluates graphs it has extended.
func TestIndexInvalidatedByMutatingAccessors(t *testing.T) {
	g := figure4Large()
	first := ExpectedBenefit(g, Options{})
	g.AddCPU(&Node{Type: CWait, Problem: UnnecessarySync, OutCPU: 5 * ms})
	g.AddCPU(&Node{Type: CWork, OutCPU: 50 * ms}) // idle the new sync can use
	second := ExpectedBenefit(g, Options{})
	if second.Total == first.Total {
		t.Fatalf("AddCPU after evaluation not reflected: total stayed %v", first.Total)
	}
	if want := referenceExpectedBenefit(g, Options{}); second.Total != want.Total {
		t.Fatalf("post-mutation total %v, reference %v", second.Total, want.Total)
	}
}

// TestStaleCarryDoesNotLeakPastNecessarySync pins the trickiest incremental
// case: leftover wait parked on a necessary (never-processed) CWait must be
// lost there, not credited to a later synchronization's pool.
func TestStaleCarryDoesNotLeakPastNecessarySync(t *testing.T) {
	g := New(0)
	// Big unnecessary sync with no absorbable time before the next sync:
	// all 100ms of leftover parks on the necessary CWait at index 1.
	g.AddCPU(&Node{Type: CWait, Problem: UnnecessarySync, OutCPU: 100 * ms})
	g.AddCPU(&Node{Type: CWait, OutCPU: 1 * ms}) // necessary: carry dies here
	g.AddCPU(&Node{Type: CWork, OutCPU: 50 * ms})
	// Second unnecessary sync: its pool must be its own 10ms only.
	g.AddCPU(&Node{Type: CWait, Problem: UnnecessarySync, OutCPU: 10 * ms})
	g.AddCPU(&Node{Type: CWork, OutCPU: 50 * ms})
	g.AddCPU(&Node{Type: CWait, OutCPU: 0})

	got := ExpectedBenefit(g, Options{})
	want := referenceExpectedBenefit(g, Options{})
	if !sameResult(t, "stale-carry", got, want) {
		t.Fatal("incremental result diverges from reference")
	}
	if got.Total != 10*ms {
		t.Fatalf("total = %v, want 10ms (first sync absorbs nothing, second its own 10ms)", got.Total)
	}
}

// TestSequenceEvaluatorScratchReuse proves repeated evaluations against one
// graph stay correct when the evaluator reuses its member scratch.
func TestSequenceEvaluatorScratchReuse(t *testing.T) {
	g := buildAdversarialGraph([]byte{0, 30, 11, 20, 3, 40, 22, 10, 0, 25, 5, 15, 33, 35, 2, 12})
	eval := NewSequenceEvaluator(g)
	probs := g.ProblematicNodes()
	if len(probs) < 2 {
		t.Skip("graph has too few problems for the reuse test")
	}
	for trial := 0; trial < 4; trial++ {
		members := probs[trial%2:]
		got := eval.Evaluate(members, Options{})
		want := referenceSequenceBenefit(g, members, Options{})
		if !sameResult(t, "scratch-reuse", got, want) {
			t.Fatalf("trial %d diverged", trial)
		}
	}
}
