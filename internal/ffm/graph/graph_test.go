package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"diogenes/internal/callstack"
	"diogenes/internal/simtime"
)

const ms = simtime.Millisecond

// chain builds a CPU chain from (type, duration) pairs, assigning start
// times cumulatively.
func chain(specs ...struct {
	t NodeType
	d simtime.Duration
	p Problem
}) *Graph {
	g := New(0)
	var at simtime.Time
	for _, s := range specs {
		g.AddCPU(&Node{Type: s.t, STime: at, OutCPU: s.d, Problem: s.p})
		at = at.Add(s.d)
	}
	g.ExecTime = simtime.Duration(at)
	return g
}

type spec = struct {
	t NodeType
	d simtime.Duration
	p Problem
}

// figure4Large builds the "Synchronization Removed with Large Benefit" side
// of Figure 4: ample CPU work follows the removed wait, so GPU idle time
// absorbs the whole wait.
func figure4Large() *Graph {
	return chain(
		spec{CWork, 8 * ms, ProblemNone},
		spec{CLaunch, 1 * ms, ProblemNone},
		spec{CWait, 10 * ms, UnnecessarySync}, // CWait0: the removed wait
		spec{CWork, 5 * ms, ProblemNone},
		spec{CLaunch, 1 * ms, ProblemNone},
		spec{CWork, 5 * ms, ProblemNone},
		spec{CWait, 4 * ms, ProblemNone}, // CWait1: necessary
		spec{CWork, 4 * ms, ProblemNone},
	)
}

// figure4Small builds the "Small benefit" side: little CPU work separates
// the removed wait from the next one, so the second wait grows to fill most
// of the time saved.
func figure4Small() *Graph {
	return chain(
		spec{CWork, 8 * ms, ProblemNone},
		spec{CLaunch, 1 * ms, ProblemNone},
		spec{CWait, 10 * ms, UnnecessarySync}, // CWait0: identical duration
		spec{CWork, 3 * ms, ProblemNone},
		spec{CWait, 9 * ms, ProblemNone}, // CWait1: necessary
		spec{CWork, 5 * ms, ProblemNone},
	)
}

func TestFigure4LargeBenefit(t *testing.T) {
	g := figure4Large()
	res := ExpectedBenefit(g, Options{})
	if len(res.PerNode) != 1 {
		t.Fatalf("problems = %d", len(res.PerNode))
	}
	if res.Total != 10*ms {
		t.Fatalf("benefit = %v, want full 10ms wait", res.Total)
	}
}

func TestFigure4SmallBenefit(t *testing.T) {
	g := figure4Small()
	res := ExpectedBenefit(g, Options{})
	// Only 3ms of CWork separates the waits: benefit is capped there.
	if res.Total != 3*ms {
		t.Fatalf("benefit = %v, want 3ms", res.Total)
	}
}

func TestFigure4IdenticalWaitDifferentOutcome(t *testing.T) {
	// The paper's point: the same 10ms wait yields different benefits
	// depending on the remaining operations.
	large := ExpectedBenefit(figure4Large(), Options{}).Total
	small := ExpectedBenefit(figure4Small(), Options{}).Total
	if large <= small {
		t.Fatalf("large %v not greater than small %v", large, small)
	}
}

func TestRemoveSyncGrowsNextWait(t *testing.T) {
	g := figure4Small()
	work := g.Clone()
	benefit := removeSynchronization(work, 2)
	if benefit != 3*ms {
		t.Fatalf("benefit = %v", benefit)
	}
	if work.CPU[2].OutCPU != 0 {
		t.Fatal("removed wait retains duration")
	}
	// CWait1 inherits the unrealized 7ms on top of its own 9ms.
	if work.CPU[4].inherited != 7*ms || work.CPU[4].OutCPU != 9*ms {
		t.Fatalf("next wait = %v own + %v inherited, want 9ms + 7ms",
			work.CPU[4].OutCPU, work.CPU[4].inherited)
	}
	// Original untouched.
	if g.CPU[2].OutCPU != 10*ms || g.CPU[4].OutCPU != 9*ms {
		t.Fatal("ExpectedBenefit mutated the input graph")
	}
}

func TestRemoveSyncAtEndOfProgram(t *testing.T) {
	// No later synchronization: the end of the program absorbs the wait
	// only insofar as CPU work remains.
	g := chain(
		spec{CWait, 10 * ms, UnnecessarySync},
		spec{CWork, 2 * ms, ProblemNone},
	)
	res := ExpectedBenefit(g, Options{})
	if res.Total != 2*ms {
		t.Fatalf("benefit = %v, want 2ms", res.Total)
	}
}

func TestMisplacedSyncUsesFirstUseTime(t *testing.T) {
	g := chain(
		spec{CWork, 5 * ms, ProblemNone},
		spec{CWait, 10 * ms, MisplacedSync},
		spec{CWork, 20 * ms, ProblemNone},
	)
	g.CPU[1].FirstUseTime = 6 * ms
	res := ExpectedBenefit(g, Options{})
	if res.Total != 6*ms {
		t.Fatalf("benefit = %v, want FirstUseTime 6ms", res.Total)
	}
}

func TestMisplacedSyncClampOption(t *testing.T) {
	g := chain(spec{CWait, 4 * ms, MisplacedSync})
	g.CPU[0].FirstUseTime = 9 * ms

	// Paper-faithful: returns FirstUseTime even beyond the wait duration.
	if got := ExpectedBenefit(g, Options{}).Total; got != 9*ms {
		t.Fatalf("unclamped = %v, want 9ms", got)
	}
	// Clamped variant: bounded by the wait itself.
	if got := ExpectedBenefit(g, Options{ClampMisplacedBenefit: true}).Total; got != 4*ms {
		t.Fatalf("clamped = %v, want 4ms", got)
	}
}

func TestRemoveTransferBenefitIsLaunchDuration(t *testing.T) {
	g := chain(
		spec{CLaunch, 7 * ms, UnnecessaryTransfer},
		spec{CWork, 3 * ms, ProblemNone},
	)
	res := ExpectedBenefit(g, Options{})
	if res.Total != 7*ms {
		t.Fatalf("benefit = %v, want 7ms", res.Total)
	}
}

func TestMultipleProblemsEvaluatedInOrder(t *testing.T) {
	// Two unnecessary syncs sharing one pool of idle: the first consumes
	// the CWork between them; the second sees only what remains after it.
	g := chain(
		spec{CWait, 10 * ms, UnnecessarySync},
		spec{CWork, 4 * ms, ProblemNone},
		spec{CWait, 10 * ms, UnnecessarySync},
		spec{CWork, 3 * ms, ProblemNone},
		spec{CWait, 5 * ms, ProblemNone},
	)
	res := ExpectedBenefit(g, Options{})
	if len(res.PerNode) != 2 {
		t.Fatalf("problems = %d", len(res.PerNode))
	}
	if res.PerNode[0].Benefit != 4*ms {
		t.Fatalf("first = %v, want 4ms", res.PerNode[0].Benefit)
	}
	if res.PerNode[1].Benefit != 3*ms {
		t.Fatalf("second = %v, want 3ms", res.PerNode[1].Benefit)
	}
	if res.Total != 7*ms {
		t.Fatalf("total = %v", res.Total)
	}
}

func TestSequenceEqualsPlainForAdjacentSyncs(t *testing.T) {
	// When every CWait between consecutive members is itself the next
	// member, Figure 5's plain algorithm already forwards unrealized
	// savings (via the next-sync duration bump), so the two evaluations
	// coincide.
	g := chain(
		spec{CWait, 10 * ms, UnnecessarySync},
		spec{CWork, 1 * ms, ProblemNone},
		spec{CWait, 2 * ms, UnnecessarySync},
		spec{CWork, 8 * ms, ProblemNone},
		spec{CWait, 5 * ms, ProblemNone},
	)
	members := []*Node{g.CPU[0], g.CPU[2]}
	plain := ExpectedBenefit(g, Options{})
	seq := SequenceBenefit(g, members, Options{})
	if plain.Total != seq.Total {
		t.Fatalf("plain %v != sequence %v", plain.Total, seq.Total)
	}
	if seq.Total != 9*ms { // 1ms absorbed at node0, 8ms of the carried 9+2 at node2
		t.Fatalf("total = %v, want 9ms", seq.Total)
	}
}

func TestSequenceCarryForwardOverMisplacedSync(t *testing.T) {
	// The §3.5.2 modification matters when carried savings must pass over
	// an intermediate member that is not an unnecessary synchronization.
	// Plain evaluation dumps node0's unrealized 9ms into the misplaced
	// wait at node2, where it is lost; the sequence evaluation carries it
	// to node4, whose 4ms idle window can absorb more of it.
	g := chain(
		spec{CWait, 10 * ms, UnnecessarySync}, // member
		spec{CWork, 1 * ms, ProblemNone},
		spec{CWait, 2 * ms, MisplacedSync}, // member, FirstUse 1ms
		spec{CWork, 8 * ms, ProblemNone},
		spec{CWait, 2 * ms, UnnecessarySync}, // member
		spec{CWork, 4 * ms, ProblemNone},
		spec{CWait, 5 * ms, ProblemNone}, // necessary: ends sequence
	)
	g.CPU[2].FirstUseTime = 1 * ms
	members := []*Node{g.CPU[0], g.CPU[2], g.CPU[4]}

	plain := ExpectedBenefit(g, Options{})
	seq := SequenceBenefit(g, members, Options{})
	if plain.Total != 4*ms { // 1 + 1 + 2
		t.Fatalf("plain = %v, want 4ms", plain.Total)
	}
	if seq.Total != 6*ms { // 1 + 1 + min(4 idle, 2+carry 9)
		t.Fatalf("sequence = %v, want 6ms", seq.Total)
	}
	if seq.PerNode[2].Benefit != 4*ms {
		t.Fatalf("last member = %v, want 4ms", seq.PerNode[2].Benefit)
	}
}

func stacked(fn, file string, line int, tmpl string) *Node {
	return &Node{
		Type:    CWait,
		Problem: UnnecessarySync,
		OutCPU:  1 * ms,
		Func:    fn,
		Stack: callstack.Trace{
			{Function: tmpl, File: file, Line: line},
			{Function: "main", File: "main.cpp", Line: 10},
		},
	}
}

func groupingGraph() *Graph {
	g := New(0)
	// Two cudaFree calls from the same instruction, one from another line,
	// all within template instantiations of the same base function.
	g.AddCPU(stacked("cudaFree", "s.h", 5, "storage<float>::drop"))
	g.AddCPU(&Node{Type: CWork, OutCPU: 10 * ms})
	g.AddCPU(stacked("cudaFree", "s.h", 5, "storage<float>::drop"))
	g.AddCPU(&Node{Type: CWork, OutCPU: 10 * ms})
	g.AddCPU(stacked("cudaFree", "s.h", 9, "storage<double>::drop"))
	g.AddCPU(&Node{Type: CWork, OutCPU: 10 * ms})
	g.AddCPU(&Node{Type: CWait, OutCPU: 2 * ms}) // necessary sync
	return g
}

func TestSinglePointGroups(t *testing.T) {
	gs := SinglePointGroups(groupingGraph(), Options{})
	if len(gs) != 2 {
		t.Fatalf("groups = %d, want 2", len(gs))
	}
	// The line-5 instruction appears twice: 2ms total, sorted first.
	if gs[0].Benefit != 2*ms || len(gs[0].Nodes) != 2 {
		t.Fatalf("group0 = %+v", gs[0])
	}
	if gs[1].Benefit != 1*ms || len(gs[1].Nodes) != 1 {
		t.Fatalf("group1 = %+v", gs[1])
	}
	if gs[0].Label != "cudaFree in s.h at line 5" {
		t.Fatalf("label = %q", gs[0].Label)
	}
	if gs[0].Syncs != 2 || gs[0].Transfers != 0 {
		t.Fatalf("counts = %d/%d", gs[0].Syncs, gs[0].Transfers)
	}
}

func TestFoldedFunctionGroupsMergeTemplates(t *testing.T) {
	gs := FoldedFunctionGroups(groupingGraph(), Options{})
	if len(gs) != 1 {
		t.Fatalf("groups = %d, want 1 (templates folded)", len(gs))
	}
	if gs[0].Benefit != 3*ms || len(gs[0].Nodes) != 3 {
		t.Fatalf("fold = %+v", gs[0])
	}
	if gs[0].Label != "Fold on cudaFree" {
		t.Fatalf("label = %q", gs[0].Label)
	}
}

func TestSequencesSplitAtNecessarySync(t *testing.T) {
	g := chain(
		spec{CWait, 2 * ms, UnnecessarySync},
		spec{CLaunch, 1 * ms, UnnecessaryTransfer},
		spec{CWork, 5 * ms, ProblemNone},
		spec{CWait, 3 * ms, ProblemNone}, // necessary: ends sequence 1
		spec{CWork, 2 * ms, ProblemNone},
		spec{CWait, 4 * ms, UnnecessarySync}, // sequence 2
		spec{CWork, 6 * ms, ProblemNone},
	)
	gs := Sequences(g, Options{})
	if len(gs) != 2 {
		t.Fatalf("sequences = %d, want 2", len(gs))
	}
	var sizes []int
	for _, s := range gs {
		sizes = append(sizes, len(s.Nodes))
	}
	if (sizes[0] != 2 && sizes[1] != 2) || (sizes[0] != 1 && sizes[1] != 1) {
		t.Fatalf("sizes = %v", sizes)
	}
	for _, s := range gs {
		if s.Kind != Sequence {
			t.Fatal("wrong kind")
		}
		if len(s.Nodes) == 2 && (s.Syncs != 1 || s.Transfers != 1) {
			t.Fatalf("seq counts = %d/%d", s.Syncs, s.Transfers)
		}
	}
}

func TestSubsequence(t *testing.T) {
	g := chain(
		spec{CWait, 2 * ms, UnnecessarySync},
		spec{CWork, 1 * ms, ProblemNone},
		spec{CWait, 2 * ms, UnnecessarySync},
		spec{CWork, 5 * ms, ProblemNone},
		spec{CWait, 2 * ms, UnnecessarySync},
		spec{CWork, 5 * ms, ProblemNone},
		spec{CWait, 3 * ms, ProblemNone},
	)
	seqs := Sequences(g, Options{})
	if len(seqs) != 1 || len(seqs[0].Nodes) != 3 {
		t.Fatalf("seqs = %+v", seqs)
	}
	sub, err := Subsequence(g, seqs[0], 2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Nodes) != 2 {
		t.Fatalf("sub nodes = %d", len(sub.Nodes))
	}
	if sub.Benefit <= 0 || sub.Benefit > seqs[0].Benefit {
		t.Fatalf("sub benefit %v vs seq %v", sub.Benefit, seqs[0].Benefit)
	}
	// Range errors.
	if _, err := Subsequence(g, seqs[0], 0, 2, Options{}); err == nil {
		t.Fatal("from=0 accepted")
	}
	if _, err := Subsequence(g, seqs[0], 3, 2, Options{}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := Subsequence(g, seqs[0], 1, 4, Options{}); err == nil {
		t.Fatal("past-end range accepted")
	}
	if _, err := Subsequence(g, Group{Kind: SinglePoint}, 1, 1, Options{}); err == nil {
		t.Fatal("non-sequence group accepted")
	}
}

func TestValidate(t *testing.T) {
	g := figure4Large()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := New(0)
	bad.AddCPU(&Node{Type: CWork, STime: 10, OutCPU: 1})
	bad.AddCPU(&Node{Type: CWork, STime: 5, OutCPU: 1})
	if bad.Validate() == nil {
		t.Fatal("out-of-order STime accepted")
	}
	neg := New(0)
	neg.AddCPU(&Node{Type: CWork, OutCPU: -1})
	if neg.Validate() == nil {
		t.Fatal("negative duration accepted")
	}
	mis := New(0)
	mis.AddCPU(&Node{Type: CLaunch, Problem: MisplacedSync})
	if mis.Validate() == nil {
		t.Fatal("misplaced sync on non-wait accepted")
	}
}

func TestAddNodePanics(t *testing.T) {
	g := New(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddCPU accepted GPU node")
			}
		}()
		g.AddCPU(&Node{Type: GWork})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddGPU accepted CPU node")
			}
		}()
		g.AddGPU(&Node{Type: CWait})
	}()
}

func TestCloneIndependence(t *testing.T) {
	g := figure4Large()
	c := g.Clone()
	c.CPU[0].OutCPU = 999 * ms
	if g.CPU[0].OutCPU == 999*ms {
		t.Fatal("clone aliases original")
	}
	if len(c.CPU) != len(g.CPU) || c.ExecTime != g.ExecTime {
		t.Fatal("clone incomplete")
	}
}

func TestTotalCPUAndHelpers(t *testing.T) {
	g := figure4Large()
	if g.TotalCPU() != 38*ms {
		t.Fatalf("TotalCPU = %v", g.TotalCPU())
	}
	if g.NextSyncIndex(2) != 6 {
		t.Fatalf("NextSyncIndex = %d", g.NextSyncIndex(2))
	}
	if g.NextSyncIndex(6) != len(g.CPU) {
		t.Fatal("NextSyncIndex past last sync wrong")
	}
	if g.SumDurationBetween(2, 6) != 11*ms {
		t.Fatalf("SumDurationBetween = %v", g.SumDurationBetween(2, 6))
	}
	if got := g.ProblematicNodes(); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("ProblematicNodes = %v", got)
	}
}

func TestStrings(t *testing.T) {
	for ty, want := range map[NodeType]string{CWork: "CWork", CLaunch: "CLaunch", CWait: "CWait", GWork: "GWork", GWait: "GWait"} {
		if ty.String() != want {
			t.Errorf("%v.String() = %q", ty, ty.String())
		}
	}
	for p, want := range map[Problem]string{
		ProblemNone: "none", UnnecessarySync: "unnecessary synchronization",
		MisplacedSync: "misplaced synchronization", UnnecessaryTransfer: "unnecessary transfer",
	} {
		if p.String() != want {
			t.Errorf("%v.String() = %q", p, p.String())
		}
	}
	for k, want := range map[GroupKind]string{SinglePoint: "single point", FoldedFunction: "folded function", Sequence: "sequence"} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}

// buildRandomGraph converts fuzz bytes into a structurally valid graph.
func buildRandomGraph(raw []byte) *Graph {
	g := New(0)
	var at simtime.Time
	for i := 0; i+1 < len(raw) && i < 60; i += 2 {
		ty := NodeType(raw[i] % 3)
		d := simtime.Duration(raw[i+1]%50) * ms
		p := ProblemNone
		if ty == CWait && raw[i]%5 == 0 {
			p = UnnecessarySync
		}
		if ty == CWait && raw[i]%7 == 0 {
			p = MisplacedSync
		}
		if ty == CLaunch && raw[i]%4 == 0 {
			p = UnnecessaryTransfer
		}
		n := g.AddCPU(&Node{Type: ty, STime: at, OutCPU: d, Problem: p})
		if p == MisplacedSync {
			n.FirstUseTime = simtime.Duration(raw[i+1]%20) * ms
		}
		at = at.Add(d)
	}
	return g
}

func TestQuickBenefitNonNegativeAndBounded(t *testing.T) {
	f := func(raw []byte) bool {
		g := buildRandomGraph(raw)
		total := g.TotalCPU()
		res := ExpectedBenefit(g, Options{ClampMisplacedBenefit: true})
		if res.Total < 0 {
			return false
		}
		// With clamping, no estimate can exceed the CPU time available.
		return res.Total <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExpectedBenefitDoesNotMutate(t *testing.T) {
	f := func(raw []byte) bool {
		g := buildRandomGraph(raw)
		before := make([]simtime.Duration, len(g.CPU))
		for i, n := range g.CPU {
			before[i] = n.OutCPU
		}
		ExpectedBenefit(g, Options{})
		for i, n := range g.CPU {
			if n.OutCPU != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSequenceAtLeastPlainForUnnecessarySyncs(t *testing.T) {
	// Carry-forward can only help: for graphs whose problems are all
	// unnecessary synchronizations, evaluating them as one sequence yields
	// at least the plain per-node total.
	f := func(raw []byte) bool {
		g := buildRandomGraph(raw)
		var members []*Node
		for _, n := range g.CPU {
			if n.Problem == UnnecessarySync {
				members = append(members, n)
			} else if n.Problematic() {
				n.Problem = ProblemNone
			}
		}
		if len(members) == 0 {
			return true
		}
		plain := ExpectedBenefit(g, Options{}).Total
		seq := SequenceBenefit(g, members, Options{}).Total
		return seq >= plain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := figure4Large()
	g.CPU[2].Func = "cudaDeviceSynchronize"
	g.AddGPU(&Node{Type: GWork, OutCPU: 10 * ms})
	var buf strings.Builder
	if err := g.WriteDOT(&buf, "figure 4 (large benefit)"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph", "CWait\\ncudaDeviceSynchronize", "fillcolor", "->", "cluster_gpu", "GWork",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Edge labels carry durations.
	if !strings.Contains(out, "8ms") {
		t.Errorf("DOT missing duration label:\n%s", out)
	}
}
