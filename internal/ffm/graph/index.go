package graph

import (
	"diogenes/internal/simtime"
)

// benefitIndex holds per-node prefix aggregates over the CPU chain, computed
// once per graph, that let the benefit algorithms answer their two inner
// queries — "how much absorbable CPU time lies before the next
// synchronization?" and "does a necessary synchronization fall in this
// gap?" — in O(1) instead of rescanning the chain. Everything in it derives
// from node fields the evaluations read but (in their incremental form)
// never write, so one index serves any number of evaluations.
type benefitIndex struct {
	// prefix[k] is the summed OutCPU of CLaunch|CWork nodes with index < k
	// (the SumDurationBetween aggregate).
	prefix []simtime.Duration
	// nextSync[i] is the index of the first CWait strictly after i, or
	// len(CPU) when none exists (Figure 5's GetNextSyncNode).
	nextSync []int
	// necessary[k] counts CWait nodes with index < k that carry no problem —
	// the synchronizations that terminate a §3.5.2 sequence.
	necessary []int32
	// problematic lists the indexes of problem-carrying nodes in chain
	// order (Figure 5's iteration set).
	problematic []int
}

// index returns the graph's benefit index, building it on first use. The
// index is invalidated by AddCPU and resetFrom; code that mutates node
// types, problems or durations through other means must call
// InvalidateIndex before the next evaluation. Concurrent first uses may
// build the index more than once; the results are identical and the extra
// build is discarded, which is cheaper than locking every evaluation.
func (g *Graph) index() *benefitIndex {
	if idx := g.idx.Load(); idx != nil {
		return idx
	}
	idx := buildIndex(g)
	g.idx.Store(idx)
	return idx
}

// InvalidateIndex discards the cached benefit index. Mutating accessors call
// it automatically; it exists for callers that write node fields directly.
// Not safe to call concurrently with evaluations — a graph must be quiescent
// while it is being changed, as ever.
func (g *Graph) InvalidateIndex() {
	g.idx.Store(nil)
}

func buildIndex(g *Graph) *benefitIndex {
	n := len(g.CPU)
	idx := &benefitIndex{
		prefix:    make([]simtime.Duration, n+1),
		nextSync:  make([]int, n),
		necessary: make([]int32, n+1),
	}
	for i, node := range g.CPU {
		idx.prefix[i+1] = idx.prefix[i]
		if node.Type == CLaunch || node.Type == CWork {
			idx.prefix[i+1] += node.OutCPU
		}
		idx.necessary[i+1] = idx.necessary[i]
		if node.Type == CWait && !node.Problematic() {
			idx.necessary[i+1]++
		}
		if node.Problematic() {
			idx.problematic = append(idx.problematic, i)
		}
	}
	next := n
	for i := n - 1; i >= 0; i-- {
		idx.nextSync[i] = next
		if g.CPU[i].Type == CWait {
			next = i
		}
	}
	return idx
}

// sumBetween is SumDurationBetween over the prefix aggregate: the OutCPU of
// CLaunch|CWork nodes strictly between i and j.
func (x *benefitIndex) sumBetween(i, j int) simtime.Duration {
	if j > len(x.prefix)-1 {
		j = len(x.prefix) - 1
	}
	if j <= i+1 {
		return 0
	}
	return x.prefix[j] - x.prefix[i+1]
}

// necessaryBetween counts necessary synchronizations strictly between i and
// j. i may be -1 (before the chain).
func (x *benefitIndex) necessaryBetween(i, j int) int32 {
	if j <= i+1 {
		return 0
	}
	return x.necessary[j] - x.necessary[i+1]
}
