package graph

import (
	"fmt"
	"sort"

	"diogenes/internal/simtime"
)

// GroupKind identifies one of §3.5.2's node groupings.
type GroupKind uint8

// Group kinds.
const (
	SinglePoint GroupKind = iota
	FoldedFunction
	Sequence
)

// String names the grouping.
func (k GroupKind) String() string {
	switch k {
	case SinglePoint:
		return "single point"
	case FoldedFunction:
		return "folded function"
	case Sequence:
		return "sequence"
	default:
		return fmt.Sprintf("GroupKind(%d)", uint8(k))
	}
}

// Group is a set of problematic nodes that one source-level fix would
// correct, with their combined expected benefit.
type Group struct {
	Kind    GroupKind
	Key     string
	Label   string
	Nodes   []*Node
	Benefit simtime.Duration
	// Syncs and Transfers count the problem types inside the group (the
	// "Number of Sync Issues / Number of Transfer Issues" of Figure 6).
	Syncs     int
	Transfers int
}

func (g *Group) count() {
	g.Syncs, g.Transfers = 0, 0
	for _, n := range g.Nodes {
		if n.Problem == UnnecessaryTransfer {
			g.Transfers++
		} else if n.Problematic() {
			g.Syncs++
		}
	}
}

// pointLabel renders a node the way the CLI lists sequence entries:
// "cudaMemcpy in als.cpp at line 738".
func pointLabel(n *Node) string {
	leaf := n.Stack.Leaf()
	if leaf.File == "" {
		return n.Func
	}
	return fmt.Sprintf("%s in %s at line %d", n.Func, leaf.File, leaf.Line)
}

// SinglePointGroups combines the expected benefit of problematic nodes with
// identical stack traces matched by instruction address (exact
// function/file/line chain). One evaluation pass supplies the per-node
// benefits; groups are returned sorted by descending benefit.
func SinglePointGroups(g *Graph, opts Options) []Group {
	return groupBy(g, opts, SinglePoint, func(n *Node) (string, string) {
		key := n.Func + "|" + n.Stack.Key()
		return key, pointLabel(n)
	})
}

// FoldedFunctionGroups combines nodes whose stack traces match by demangled
// base function name, so all instantiations of one template fold together
// (§3.5.2). Labelled "Fold on <api function>".
func FoldedFunctionGroups(g *Graph, opts Options) []Group {
	return groupBy(g, opts, FoldedFunction, func(n *Node) (string, string) {
		key := n.Func + "|" + n.Stack.FoldKey()
		return key, "Fold on " + n.Func
	})
}

func groupBy(g *Graph, opts Options, kind GroupKind, keyer func(*Node) (key, label string)) []Group {
	res := ExpectedBenefit(g, opts)
	byKey := make(map[string]*Group)
	var order []string
	for _, nb := range res.PerNode {
		key, label := keyer(nb.Node)
		grp, ok := byKey[key]
		if !ok {
			grp = &Group{Kind: kind, Key: key, Label: label}
			byKey[key] = grp
			order = append(order, key)
		}
		grp.Nodes = append(grp.Nodes, nb.Node)
		grp.Benefit += nb.Benefit
	}
	out := make([]Group, 0, len(byKey))
	for _, key := range order {
		grp := byKey[key]
		grp.count()
		out = append(out, *grp)
	}
	sortGroups(out)
	return out
}

// Sequences identifies the contiguous problem sequences of §3.5.2: each
// starts at a problematic node and extends along the CPU chain until a node
// performing a *necessary* synchronization (a CWait with no problem) is
// reached. Non-synchronizing nodes (CWork, CLaunch) may appear inside. The
// returned groups are evaluated with the carry-forward rule and sorted by
// descending benefit.
func Sequences(g *Graph, opts Options) []Group {
	var out []Group
	eval := NewSequenceEvaluator(g)
	i := 0
	for i < len(g.CPU) {
		if !g.CPU[i].Problematic() {
			i++
			continue
		}
		// Extend until a necessary synchronization.
		var members []*Node
		j := i
		for j < len(g.CPU) {
			n := g.CPU[j]
			if n.Type == CWait && !n.Problematic() {
				break
			}
			if n.Problematic() {
				members = append(members, n)
			}
			j++
		}
		res := eval.Evaluate(members, opts)
		grp := Group{
			Kind:    Sequence,
			Key:     fmt.Sprintf("seq@%d", members[0].ID),
			Label:   "Sequence starting at call " + pointLabel(members[0]),
			Nodes:   members,
			Benefit: res.Total,
		}
		grp.count()
		out = append(out, grp)
		i = j + 1
	}
	sortGroups(out)
	return out
}

// Subsequence re-evaluates entries [from, to] (1-based, inclusive, matching
// the numbered CLI listing of Figure 6) of an existing sequence group,
// without any further data collection — the §5.1 refinement used to find
// the fixable core of cumf_als' 23-operation sequence (Figure 8).
func Subsequence(g *Graph, seq Group, from, to int, opts Options) (Group, error) {
	if seq.Kind != Sequence {
		return Group{}, fmt.Errorf("graph: Subsequence of %v group", seq.Kind)
	}
	if from < 1 || to > len(seq.Nodes) || from > to {
		return Group{}, fmt.Errorf("graph: subsequence [%d,%d] out of range 1..%d", from, to, len(seq.Nodes))
	}
	members := seq.Nodes[from-1 : to]
	res := SequenceBenefit(g, members, opts)
	grp := Group{
		Kind:    Sequence,
		Key:     fmt.Sprintf("%s[%d:%d]", seq.Key, from, to),
		Label:   fmt.Sprintf("Subsequence %d..%d of %s", from, to, seq.Label),
		Nodes:   members,
		Benefit: res.Total,
	}
	grp.count()
	return grp, nil
}

func sortGroups(gs []Group) {
	sort.SliceStable(gs, func(i, j int) bool { return gs[i].Benefit > gs[j].Benefit })
}
