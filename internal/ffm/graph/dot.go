package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the CPU chain as a Graphviz digraph in the style of the
// paper's Figure 4: one node per event, edges labelled with the real-time
// duration between events, problematic nodes highlighted. Intended for
// inspecting small graphs (unit examples, single iterations); for full
// traces use the timeline export instead.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", title); err != nil {
		return err
	}
	fmt.Fprintf(w, "  label=%q;\n", title)
	for i, n := range g.CPU {
		label := n.Type.String()
		if n.Func != "" {
			label = fmt.Sprintf("%s\\n%s", n.Type, n.Func)
		}
		attrs := ""
		switch n.Problem {
		case UnnecessarySync:
			attrs = `, style=filled, fillcolor="#f4cccc"`
		case MisplacedSync:
			attrs = `, style=filled, fillcolor="#fce5cd"`
		case UnnecessaryTransfer:
			attrs = `, style=filled, fillcolor="#d9d2e9"`
		}
		fmt.Fprintf(w, "  c%d [label=\"%s\"%s];\n", i, escape(label), attrs)
		if i+1 < len(g.CPU) {
			fmt.Fprintf(w, "  c%d -> c%d [label=%q];\n", i, i+1, g.CPU[i].OutCPU.String())
		}
	}
	if len(g.GPU) > 0 {
		fmt.Fprintf(w, "  subgraph cluster_gpu {\n    label=\"GPU\";\n")
		for i, n := range g.GPU {
			fmt.Fprintf(w, "    g%d [label=%q, shape=ellipse];\n", i, n.Type.String())
		}
		fmt.Fprintf(w, "  }\n")
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
