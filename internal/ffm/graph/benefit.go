package graph

import (
	"diogenes/internal/simtime"
)

// Options configures the expected-benefit evaluation.
type Options struct {
	// ClampMisplacedBenefit bounds a misplaced synchronization's benefit at
	// the wait's own duration. Figure 5's pseudocode returns
	// Node.FirstUseTime unclamped; physically no more than the wait itself
	// can be recovered, so this deviation is offered as an option and both
	// behaviours are tested. Off by default for fidelity to the paper.
	ClampMisplacedBenefit bool
}

// NodeBenefit is the per-node outcome of an evaluation.
type NodeBenefit struct {
	Node    *Node
	Benefit simtime.Duration
}

// Result is the outcome of running ExpectedBenefit over a graph.
type Result struct {
	PerNode []NodeBenefit
	Total   simtime.Duration
}

// ExpectedBenefit runs Figure 5's algorithm over a clone of g: it iterates
// the problematic nodes in chain order and models the effect of fixing each
// one, mutating edge durations as it goes so later estimates see the graph
// as it would look after earlier fixes. g itself is not modified.
func ExpectedBenefit(g *Graph, opts Options) Result {
	work := g.Clone()
	var res Result
	for i, n := range work.CPU {
		if !n.Problematic() {
			continue
		}
		var est simtime.Duration
		switch n.Problem {
		case UnnecessarySync:
			est = removeSynchronization(work, i)
		case MisplacedSync:
			est = moveSynchronization(work, i, opts)
		case UnnecessaryTransfer:
			est = removeMemoryTransfer(work, i)
		}
		// Report against the caller's node, not the clone's.
		res.PerNode = append(res.PerNode, NodeBenefit{Node: g.CPU[i], Benefit: est})
		res.Total += est
	}
	return res
}

// removeSynchronization is Figure 5's RemoveSyncronization: the benefit of
// deleting the wait at index i is bounded by the GPU idle time available
// between it and the next synchronization; whatever cannot be absorbed
// reappears as added wait at the next synchronization.
func removeSynchronization(g *Graph, i int) simtime.Duration {
	node := g.CPU[i]
	next := g.NextSyncIndex(i)
	estMaxGPUIdle := g.SumDurationBetween(i, next)
	pool := node.OutCPU + node.inherited
	estBenefit := minDuration(estMaxGPUIdle, pool)
	if next < len(g.CPU) {
		g.CPU[next].inherited += pool - estBenefit
	}
	node.OutCPU = 0
	node.inherited = 0
	return estBenefit
}

// moveSynchronization is Figure 5's MisplacedSynchronization: moving the
// wait later by FirstUseTime lets the GPU run during that span, so the
// expected benefit is the time-to-first-use collected in stage 4.
func moveSynchronization(g *Graph, i int, opts Options) simtime.Duration {
	node := g.CPU[i]
	estBenefit := node.FirstUseTime
	if opts.ClampMisplacedBenefit {
		estBenefit = minDuration(estBenefit, node.OutCPU)
	}
	node.OutCPU -= estBenefit
	if node.OutCPU < 0 {
		node.OutCPU = 0
	}
	return estBenefit
}

// removeMemoryTransfer is Figure 5's RemoveMemoryTransfer: the benefit of
// deleting an unnecessary transfer is the CPU time of its CLaunch event —
// its own duration only. Wait time inherited from upstream removals is not
// the transfer's to claim; it moves on to the next surviving
// synchronization.
func removeMemoryTransfer(g *Graph, i int) simtime.Duration {
	node := g.CPU[i]
	estBenefit := node.OutCPU
	if node.inherited > 0 {
		if next := g.NextSyncIndex(i); next < len(g.CPU) {
			g.CPU[next].inherited += node.inherited
		}
		node.inherited = 0
	}
	node.OutCPU = 0
	return estBenefit
}

// SequenceBenefit evaluates a contiguous sequence of problematic nodes with
// the §3.5.2 carry-forward modification: unnecessary-synchronization delay
// that cannot be absorbed by GPU idle time before the next synchronization
// is carried forward to later nodes in the sequence, "allowing for large
// unnecessary synchronization delays to be profitably corrected". nodes
// must be the sequence members in chain order (identified by ID in g); the
// evaluation works on a clone and returns per-node realized benefits.
func SequenceBenefit(g *Graph, nodes []*Node, opts Options) Result {
	return NewSequenceEvaluator(g).Evaluate(nodes, opts)
}

// SequenceEvaluator runs carry-forward sequence evaluations against one
// source graph, reusing a single scratch clone across calls. The per-call
// cost drops from a full graph copy (the dominant allocation in stage-5
// analysis, where every candidate sequence is evaluated) to an in-place
// value reset. Not safe for concurrent use; each goroutine needs its own.
type SequenceEvaluator struct {
	src     *Graph
	scratch *Graph
	member  map[int]bool
}

// NewSequenceEvaluator prepares an evaluator for g. The graph must not be
// mutated while the evaluator is in use.
func NewSequenceEvaluator(g *Graph) *SequenceEvaluator {
	return &SequenceEvaluator{src: g, member: make(map[int]bool)}
}

// Evaluate is SequenceBenefit against the evaluator's source graph.
func (e *SequenceEvaluator) Evaluate(nodes []*Node, opts Options) Result {
	if e.scratch == nil {
		e.scratch = e.src.Clone()
	} else {
		e.scratch.resetFrom(e.src)
	}
	work, g := e.scratch, e.src
	clear(e.member)
	member := e.member
	for _, n := range nodes {
		member[n.ID] = true
	}
	var res Result
	var carry simtime.Duration
	for i, n := range work.CPU {
		if n.Type == CWait && !member[n.ID] && !n.Problematic() {
			// A necessary synchronization ends any sequence: savings
			// carried into it are lost there.
			carry = 0
		}
		if !member[n.ID] || !n.Problematic() {
			continue
		}
		var est simtime.Duration
		switch n.Problem {
		case UnnecessarySync:
			next := work.NextSyncIndex(i)
			idle := work.SumDurationBetween(i, next)
			pool := n.OutCPU + carry
			est = minDuration(idle, pool)
			carry = pool - est
			n.OutCPU = 0
		case MisplacedSync:
			est = moveSynchronization(work, i, opts)
		case UnnecessaryTransfer:
			est = removeMemoryTransfer(work, i)
		}
		orig := nodeByID(g, n.ID)
		res.PerNode = append(res.PerNode, NodeBenefit{Node: orig, Benefit: est})
		res.Total += est
	}
	// Whatever is still carried reaches the necessary synchronization that
	// terminates the sequence and is lost there.
	return res
}

func nodeByID(g *Graph, id int) *Node {
	// CPU IDs are assigned densely by AddCPU, so this is an index lookup
	// guarded for safety.
	if id >= 0 && id < len(g.CPU) && g.CPU[id].ID == id {
		return g.CPU[id]
	}
	for _, n := range g.CPU {
		if n.ID == id {
			return n
		}
	}
	return nil
}

func minDuration(a, b simtime.Duration) simtime.Duration {
	if a < b {
		return a
	}
	return b
}
