package graph

import (
	"sort"

	"diogenes/internal/simtime"
)

// Options configures the expected-benefit evaluation.
type Options struct {
	// ClampMisplacedBenefit bounds a misplaced synchronization's benefit at
	// the wait's own duration. Figure 5's pseudocode returns
	// Node.FirstUseTime unclamped; physically no more than the wait itself
	// can be recovered, so this deviation is offered as an option and both
	// behaviours are tested. Off by default for fidelity to the paper.
	ClampMisplacedBenefit bool
}

// NodeBenefit is the per-node outcome of an evaluation.
type NodeBenefit struct {
	Node    *Node
	Benefit simtime.Duration
}

// Result is the outcome of running ExpectedBenefit over a graph.
type Result struct {
	PerNode []NodeBenefit
	Total   simtime.Duration
}

// ExpectedBenefit runs Figure 5's algorithm: it iterates the problematic
// nodes in chain order and models the effect of fixing each one.
//
// The evaluation is incremental — no clone, no mutation. Figure 5's
// pseudocode mutates the graph as it walks it, but every value it ever
// *reads* is provably an original one: processed nodes lie behind the scan,
// the idle-time sums look strictly forward and exclude CWait nodes (the
// only type whose duration a fix rewrites that could otherwise be re-read),
// and the inherited-wait it pushes onto the next synchronization is
// consumed exactly once, at that node. That reduces the whole walk to the
// graph's prefix aggregates (see index.go) plus one running carry, making
// each evaluation O(problematic nodes) instead of O(n) with an O(n) copy.
// referenceExpectedBenefit keeps the literal pseudocode transcription; the
// two are equivalence-tested.
func ExpectedBenefit(g *Graph, opts Options) Result {
	idx := g.index()
	res := Result{PerNode: make([]NodeBenefit, 0, len(idx.problematic))}
	carryAt := -1 // index of the CWait the current carry is destined for
	var carry simtime.Duration
	for _, i := range idx.problematic {
		n := g.CPU[i]
		var inherited simtime.Duration
		if carryAt == i {
			inherited, carry, carryAt = carry, 0, -1
		}
		var est simtime.Duration
		switch n.Problem {
		case UnnecessarySync:
			next := idx.nextSync[i]
			idle := idx.sumBetween(i, next)
			pool := n.OutCPU + inherited
			est = minDuration(idle, pool)
			if left := pool - est; left > 0 && next < len(g.CPU) {
				// A carry still parked at an earlier, necessary (and thus
				// never-processed) CWait is lost there, exactly as the
				// reference leaves inherited unread on such nodes.
				if carryAt != next {
					carryAt, carry = next, 0
				}
				carry += left
			}
		case MisplacedSync:
			est = n.FirstUseTime
			if opts.ClampMisplacedBenefit {
				est = minDuration(est, n.OutCPU)
			}
		case UnnecessaryTransfer:
			est = n.OutCPU
			// Inherited wait is not the transfer's to claim; it moves on
			// to the next surviving synchronization.
			if inherited > 0 {
				if next := idx.nextSync[i]; next < len(g.CPU) {
					if carryAt != next {
						carryAt, carry = next, 0
					}
					carry += inherited
				}
			}
		}
		res.PerNode = append(res.PerNode, NodeBenefit{Node: n, Benefit: est})
		res.Total += est
	}
	return res
}

// referenceExpectedBenefit is the direct transcription of Figure 5: clone
// the graph, walk it, and mutate edge durations so later estimates see the
// graph as it would look after earlier fixes. It is retained as the oracle
// the incremental ExpectedBenefit is differential-tested against.
func referenceExpectedBenefit(g *Graph, opts Options) Result {
	work := g.Clone()
	var res Result
	for i, n := range work.CPU {
		if !n.Problematic() {
			continue
		}
		var est simtime.Duration
		switch n.Problem {
		case UnnecessarySync:
			est = removeSynchronization(work, i)
		case MisplacedSync:
			est = moveSynchronization(work, i, opts)
		case UnnecessaryTransfer:
			est = removeMemoryTransfer(work, i)
		}
		// Report against the caller's node, not the clone's.
		res.PerNode = append(res.PerNode, NodeBenefit{Node: g.CPU[i], Benefit: est})
		res.Total += est
	}
	return res
}

// removeSynchronization is Figure 5's RemoveSyncronization: the benefit of
// deleting the wait at index i is bounded by the GPU idle time available
// between it and the next synchronization; whatever cannot be absorbed
// reappears as added wait at the next synchronization.
func removeSynchronization(g *Graph, i int) simtime.Duration {
	node := g.CPU[i]
	next := g.NextSyncIndex(i)
	estMaxGPUIdle := g.SumDurationBetween(i, next)
	pool := node.OutCPU + node.inherited
	estBenefit := minDuration(estMaxGPUIdle, pool)
	if next < len(g.CPU) {
		g.CPU[next].inherited += pool - estBenefit
	}
	node.OutCPU = 0
	node.inherited = 0
	return estBenefit
}

// moveSynchronization is Figure 5's MisplacedSynchronization: moving the
// wait later by FirstUseTime lets the GPU run during that span, so the
// expected benefit is the time-to-first-use collected in stage 4.
func moveSynchronization(g *Graph, i int, opts Options) simtime.Duration {
	node := g.CPU[i]
	estBenefit := node.FirstUseTime
	if opts.ClampMisplacedBenefit {
		estBenefit = minDuration(estBenefit, node.OutCPU)
	}
	node.OutCPU -= estBenefit
	if node.OutCPU < 0 {
		node.OutCPU = 0
	}
	return estBenefit
}

// removeMemoryTransfer is Figure 5's RemoveMemoryTransfer: the benefit of
// deleting an unnecessary transfer is the CPU time of its CLaunch event —
// its own duration only. Wait time inherited from upstream removals is not
// the transfer's to claim; it moves on to the next surviving
// synchronization.
func removeMemoryTransfer(g *Graph, i int) simtime.Duration {
	node := g.CPU[i]
	estBenefit := node.OutCPU
	if node.inherited > 0 {
		if next := g.NextSyncIndex(i); next < len(g.CPU) {
			g.CPU[next].inherited += node.inherited
		}
		node.inherited = 0
	}
	node.OutCPU = 0
	return estBenefit
}

// SequenceBenefit evaluates a contiguous sequence of problematic nodes with
// the §3.5.2 carry-forward modification: unnecessary-synchronization delay
// that cannot be absorbed by GPU idle time before the next synchronization
// is carried forward to later nodes in the sequence, "allowing for large
// unnecessary synchronization delays to be profitably corrected". nodes
// must be the sequence members (identified by ID in g); the evaluation is
// read-only on g and returns per-node realized benefits.
func SequenceBenefit(g *Graph, nodes []*Node, opts Options) Result {
	return NewSequenceEvaluator(g).Evaluate(nodes, opts)
}

// SequenceEvaluator runs carry-forward sequence evaluations against one
// source graph. Evaluations cost O(members · log members): the same
// original-values argument as ExpectedBenefit applies (see there), so each
// call reads the shared benefit index instead of cloning the graph, and the
// member-gap "does a necessary synchronization intervene?" question is one
// prefix-count lookup. The previous clone-and-rescan implementation is kept
// as referenceSequenceBenefit for the differential tests. Not safe for
// concurrent use; each goroutine needs its own.
type SequenceEvaluator struct {
	src *Graph
	ids []int // member-index scratch, reused across calls
}

// NewSequenceEvaluator prepares an evaluator for g. The graph must not be
// mutated while the evaluator is in use.
func NewSequenceEvaluator(g *Graph) *SequenceEvaluator {
	return &SequenceEvaluator{src: g}
}

// Evaluate is SequenceBenefit against the evaluator's source graph.
func (e *SequenceEvaluator) Evaluate(nodes []*Node, opts Options) Result {
	g := e.src
	idx := g.index()
	e.ids = e.ids[:0]
	for _, n := range nodes {
		if n.ID >= 0 && n.ID < len(g.CPU) {
			e.ids = append(e.ids, n.ID)
		}
	}
	sort.Ints(e.ids)
	var res Result
	var carry simtime.Duration
	prev := -1
	for k, id := range e.ids {
		if k > 0 && id == e.ids[k-1] {
			continue
		}
		// A necessary synchronization between sequence members ends the
		// sequence: savings carried into it are lost there.
		if idx.necessaryBetween(prev, id) > 0 {
			carry = 0
		}
		prev = id
		n := g.CPU[id]
		if !n.Problematic() {
			continue
		}
		var est simtime.Duration
		switch n.Problem {
		case UnnecessarySync:
			next := idx.nextSync[id]
			idle := idx.sumBetween(id, next)
			pool := n.OutCPU + carry
			est = minDuration(idle, pool)
			carry = pool - est
		case MisplacedSync:
			est = n.FirstUseTime
			if opts.ClampMisplacedBenefit {
				est = minDuration(est, n.OutCPU)
			}
		case UnnecessaryTransfer:
			// Sequence members never carry inherited wait (only the
			// Figure-5 walk writes it), so the benefit is the launch's own
			// CPU time.
			est = n.OutCPU
		}
		res.PerNode = append(res.PerNode, NodeBenefit{Node: n, Benefit: est})
		res.Total += est
	}
	// Whatever is still carried reaches the necessary synchronization that
	// terminates the sequence and is lost there.
	return res
}

// referenceSequenceBenefit is the clone-and-rescan transcription of the
// carry-forward evaluation, kept as the oracle for differential tests.
func referenceSequenceBenefit(g *Graph, nodes []*Node, opts Options) Result {
	work := g.Clone()
	member := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		member[n.ID] = true
	}
	var res Result
	var carry simtime.Duration
	for i, n := range work.CPU {
		if n.Type == CWait && !member[n.ID] && !n.Problematic() {
			// A necessary synchronization ends any sequence: savings
			// carried into it are lost there.
			carry = 0
		}
		if !member[n.ID] || !n.Problematic() {
			continue
		}
		var est simtime.Duration
		switch n.Problem {
		case UnnecessarySync:
			next := work.NextSyncIndex(i)
			idle := work.SumDurationBetween(i, next)
			pool := n.OutCPU + carry
			est = minDuration(idle, pool)
			carry = pool - est
			n.OutCPU = 0
		case MisplacedSync:
			est = moveSynchronization(work, i, opts)
		case UnnecessaryTransfer:
			est = removeMemoryTransfer(work, i)
		}
		orig := nodeByID(g, n.ID)
		res.PerNode = append(res.PerNode, NodeBenefit{Node: orig, Benefit: est})
		res.Total += est
	}
	return res
}

func nodeByID(g *Graph, id int) *Node {
	// CPU IDs are assigned densely by AddCPU, so this is an index lookup
	// guarded for safety.
	if id >= 0 && id < len(g.CPU) && g.CPU[id].ID == id {
		return g.CPU[id]
	}
	for _, n := range g.CPU {
		if n.ID == id {
			return n
		}
	}
	return nil
}

func minDuration(a, b simtime.Duration) simtime.Duration {
	if a < b {
		return a
	}
	return b
}
