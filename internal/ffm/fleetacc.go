package ffm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"diogenes/internal/hashstore"
	"diogenes/internal/trace"
)

// This file is the streaming half of the fleet analysis: instead of
// materializing every rank's full Report and aggregating at the end
// (O(ranks × report) peak memory), each rank's outcome is folded into a
// FleetPartial the moment the rank finishes — the full report is released
// immediately — and partials over adjacent rank ranges merge pairwise
// until one partial spans the whole world. The merge is associative and
// keyed by rank range, never by completion order, so the assembled
// FleetReport is byte-identical to the collect-then-aggregate output at
// every worker count.

// FleetPartial is the cross-rank aggregation state for one contiguous
// range of ranks [Lo, Hi): per-rank outcome summaries (reports already
// released), the duplicate-transfer merge keyed by payload digest, and
// the per-problem benefit spread with min/max rank attribution. The
// exported fields round-trip through JSON so a sealed partial can spill
// to disk and be reloaded for its merge without loss.
//
// Dups deliberately keeps digests seen on only one rank: a digest that is
// single-rank inside this range may become cross-rank when an adjacent
// range carries it too. The single-rank leftovers are dropped only at
// assembly time, exactly like AggregateFleet's final filter.
type FleetPartial struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Analyzed counts ranks in the range that produced a report.
	Analyzed int   `json:"analyzed"`
	Failed   []int `json:"failed,omitempty"`
	// Outcomes holds the range's per-rank summaries in rank order. The
	// Report pointers are nil — folding strips them.
	Outcomes []RankOutcome    `json:"outcomes"`
	Dups     []FleetDuplicate `json:"dups,omitempty"`
	Problems []FleetProblem   `json:"problems,omitempty"`

	// Lookup indexes into Dups/Problems, maintained incrementally so
	// absorbing a partial costs O(absorbed), not O(resident). Rebuilt on
	// demand after a JSON round-trip.
	dupIdx  map[string]int
	probIdx map[problemKey]int
}

type problemKey struct{ kind, label string }

func (p *FleetPartial) ensureIndex() {
	if p.dupIdx == nil {
		p.dupIdx = make(map[string]int, len(p.Dups))
		for i := range p.Dups {
			p.dupIdx[p.Dups[i].Hash] = i
		}
	}
	if p.probIdx == nil {
		p.probIdx = make(map[problemKey]int, len(p.Problems))
		for i := range p.Problems {
			p.probIdx[problemKey{p.Problems[i].Kind, p.Problems[i].Label}] = i
		}
	}
}

// FoldRankOutcome folds one rank's outcome into a single-rank partial,
// filling the outcome's summary fields from its report (execution time,
// total benefit, problem count, per-rank duplicate transfers) and then
// releasing the report: the returned partial holds no reference to it, so
// the rank's full pipeline state is collectable the moment the fold
// returns. The per-record transfer scan keeps the historical filters
// (transfer class, valid digest) and first-appearance ordering, and the
// overview grouping keeps the historical (kind, label) keying and strict
// min/max tie rules, so merging folds reproduces the pre-streaming
// collect-then-aggregate output byte for byte.
func FoldRankOutcome(o RankOutcome) *FleetPartial {
	p := &FleetPartial{Lo: o.Rank, Hi: o.Rank + 1}
	p.ensureIndex()
	rep := o.Report
	o.Report = nil
	if rep == nil {
		p.Failed = []int{o.Rank}
		p.Outcomes = []RankOutcome{o}
		return p
	}
	p.Analyzed = 1
	o.ExecTime = rep.UninstrumentedTime
	if rep.Analysis != nil {
		o.TotalBenefit = rep.Analysis.TotalBenefit()
		o.Problems = len(rep.Analysis.Graph.ProblematicNodes())
	}
	if rep.Trace != nil {
		// Hashes are filled lazily by stage 3's resolver; force them
		// before reading. Idempotent, and a no-op on decoded runs whose
		// hashes are already strings.
		rep.Trace.ResolveHashes()
		for r := range rep.Trace.Records {
			rec := &rep.Trace.Records[r]
			if rec.Class != trace.ClassTransfer || !hashstore.ValidDigest(rec.Hash) {
				continue
			}
			if rec.Duplicate {
				o.Duplicates++
			}
			i, ok := p.dupIdx[rec.Hash]
			if !ok {
				i = len(p.Dups)
				p.dupIdx[rec.Hash] = i
				p.Dups = append(p.Dups, FleetDuplicate{Hash: rec.Hash, Func: rec.Func})
			}
			d := &p.Dups[i]
			if n := len(d.Ranks); n == 0 || d.Ranks[n-1] != o.Rank {
				d.Ranks = append(d.Ranks, o.Rank)
			}
			d.Records++
			d.Bytes += int64(rec.Bytes)
		}
	}
	if rep.Analysis != nil {
		for _, grp := range rep.Analysis.Overview {
			k := problemKey{grp.Kind.String(), grp.Label}
			i, ok := p.probIdx[k]
			if !ok {
				i = len(p.Problems)
				p.probIdx[k] = i
				p.Problems = append(p.Problems, FleetProblem{
					Kind: k.kind, Label: k.label,
					Min: grp.Benefit, Max: grp.Benefit,
					MinRank: o.Rank, MaxRank: o.Rank,
				})
			}
			fp := &p.Problems[i]
			fp.Ranks = append(fp.Ranks, o.Rank)
			fp.Total += grp.Benefit
			if grp.Benefit < fp.Min {
				fp.Min, fp.MinRank = grp.Benefit, o.Rank
			}
			if grp.Benefit > fp.Max {
				fp.Max, fp.MaxRank = grp.Benefit, o.Rank
			}
		}
	}
	p.Outcomes = []RankOutcome{o}
	return p
}

// Merge folds b into a — a must cover the rank range immediately below
// b's — and returns a. The merge is in place: a is extended, b must not
// be used afterwards. Because every combination rule is associative and
// ties resolve toward the lower rank range (Func from the first range
// that saw the digest, Min/Max ties keeping the earlier rank), any merge
// tree over adjacent ranges yields the same partial as folding ranks
// 0..N-1 sequentially.
func Merge(a, b *FleetPartial) (*FleetPartial, error) {
	if a == nil {
		return b, nil
	}
	if b == nil {
		return a, nil
	}
	if a.Hi != b.Lo {
		return nil, fmt.Errorf("ffm: cannot merge fleet partials [%d,%d) and [%d,%d): ranges not adjacent", a.Lo, a.Hi, b.Lo, b.Hi)
	}
	a.absorb(b)
	return a, nil
}

// absorb extends a by b's state without range checking (Merge checks;
// AggregateFleet feeds outcomes already in rank order).
func (p *FleetPartial) absorb(q *FleetPartial) {
	p.ensureIndex()
	p.Hi = q.Hi
	p.Analyzed += q.Analyzed
	p.Failed = append(p.Failed, q.Failed...)
	p.Outcomes = append(p.Outcomes, q.Outcomes...)
	for _, d := range q.Dups {
		if i, ok := p.dupIdx[d.Hash]; ok {
			e := &p.Dups[i]
			// Ranges are disjoint, so q's rank list never repeats p's
			// trailing rank; plain concatenation keeps ascending order.
			e.Ranks = append(e.Ranks, d.Ranks...)
			e.Records += d.Records
			e.Bytes += d.Bytes
		} else {
			p.dupIdx[d.Hash] = len(p.Dups)
			p.Dups = append(p.Dups, d)
		}
	}
	for _, fp := range q.Problems {
		k := problemKey{fp.Kind, fp.Label}
		if i, ok := p.probIdx[k]; ok {
			e := &p.Problems[i]
			e.Ranks = append(e.Ranks, fp.Ranks...)
			e.Total += fp.Total
			// Strict comparisons keep the lower range's attribution on
			// ties, matching the ascending-rank iteration of the
			// collect-then-aggregate path.
			if fp.Min < e.Min {
				e.Min, e.MinRank = fp.Min, fp.MinRank
			}
			if fp.Max > e.Max {
				e.Max, e.MaxRank = fp.Max, fp.MaxRank
			}
		} else {
			p.probIdx[k] = len(p.Problems)
			p.Problems = append(p.Problems, fp)
		}
	}
}

// assemble builds the final fleet report from a fully merged partial:
// drop digests that never crossed a rank boundary, then apply the total-
// order sorts that make the document independent of merge shape.
func (p *FleetPartial) assemble(app string, ranks int, skew *FleetSkew) *FleetReport {
	fr := &FleetReport{App: app, Ranks: ranks, Analyzed: p.Analyzed, PerRank: p.Outcomes, Skew: skew}
	fr.FailedRanks = append(fr.FailedRanks, p.Failed...)
	sort.Ints(fr.FailedRanks)
	fr.Partial = len(fr.FailedRanks) > 0
	var dups []FleetDuplicate
	for i := range p.Dups {
		if len(p.Dups[i].Ranks) < 2 {
			continue
		}
		dups = append(dups, p.Dups[i])
		fr.CrossRankDupBytes += p.Dups[i].Bytes
	}
	sort.SliceStable(dups, func(i, j int) bool {
		if dups[i].Bytes != dups[j].Bytes {
			return dups[i].Bytes > dups[j].Bytes
		}
		return dups[i].Hash < dups[j].Hash
	})
	fr.Duplicates = dups
	probs := make([]FleetProblem, 0, len(p.Problems))
	probs = append(probs, p.Problems...)
	sort.SliceStable(probs, func(i, j int) bool {
		if probs[i].Total != probs[j].Total {
			return probs[i].Total > probs[j].Total
		}
		if probs[i].Label != probs[j].Label {
			return probs[i].Label < probs[j].Label
		}
		return probs[i].Kind < probs[j].Kind
	})
	fr.Problems = probs
	return fr
}

// SpillStore persists sealed fleet partials outside the heap while they
// wait for an adjacent neighbor. Unlike the serving layer's LRU report
// store, a spill store must never evict: a spilled partial is live
// reduction state, and losing one loses ranks. Implementations must be
// safe for concurrent use.
type SpillStore interface {
	Put(key string, val []byte) error
	// Get returns the spilled bytes for key.
	Get(key string) ([]byte, error)
	// Delete releases a spilled entry after it has been reloaded.
	Delete(key string) error
}

// FileSpill is the file-per-partial SpillStore: one JSON document per
// sealed partial under a directory. Keys are the accumulator's
// "partial-<lo>-<hi>" names, so the on-disk layout is inspectable.
type FileSpill struct{ dir string }

// NewFileSpill opens (creating if needed) a spill directory.
func NewFileSpill(dir string) (*FileSpill, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ffm: spill dir: %w", err)
	}
	return &FileSpill{dir: dir}, nil
}

func (s *FileSpill) path(key string) string { return filepath.Join(s.dir, key+".json") }

func (s *FileSpill) Put(key string, val []byte) error {
	return os.WriteFile(s.path(key), val, 0o644)
}

func (s *FileSpill) Get(key string) ([]byte, error) {
	return os.ReadFile(s.path(key))
}

func (s *FileSpill) Delete(key string) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// FleetProgress is a live snapshot of one fleet reduction: how many ranks
// have folded, how the merge tree is progressing, and how much sealed
// state has spilled to disk. The serving layer streams it on fleet job
// views so a 1024-rank job reports per-rank progress instead of silence
// until the end.
type FleetProgress struct {
	RanksDone    int   `json:"ranksDone"`
	RanksTotal   int   `json:"ranksTotal"`
	Merges       int   `json:"merges"`
	Spills       int   `json:"spills"`
	SpilledBytes int64 `json:"spilledBytes"`
	// ResidentBytes is the estimated in-memory cost of partials parked
	// waiting for an adjacent neighbor.
	ResidentBytes int64 `json:"residentBytes"`
}

// FleetAccumulator is the concurrent fan-in point of the streaming fleet
// reduction. Worker tasks offer partials over contiguous rank ranges in
// whatever order they finish; the accumulator greedily merges each
// offered partial with any parked neighbor covering the adjacent range
// (merges run on the offering worker, outside the lock, so independent
// regions of the rank space merge in parallel) and parks it otherwise.
// When a byte budget is set, parked partials beyond it spill to the
// SpillStore and are reloaded only when their neighbor arrives. Because
// merging is adjacency-keyed and associative, the finalized report is
// identical for every completion order, worker count, and spill schedule.
type FleetAccumulator struct {
	ranks  int
	spill  SpillStore
	budget int64

	mu       sync.Mutex
	pending  map[int]*parkedPartial // keyed by range start
	byHi     map[int]int            // range end -> range start
	resident int64                  // estimated bytes of in-memory parked partials

	ranksDone    atomic.Int64
	merges       atomic.Int64
	spills       atomic.Int64
	spilledBytes atomic.Int64
}

// parkedPartial is one waiting range: in memory (p != nil) or spilled
// (p == nil, key addresses the spill store).
type parkedPartial struct {
	lo, hi int
	p      *FleetPartial
	key    string
	cost   int64
}

// NewFleetAccumulator builds an accumulator for a world of the given
// size. spill may be nil (never spill); budget <= 0 parks everything in
// memory even when a store is present.
func NewFleetAccumulator(ranks int, spill SpillStore, budget int64) *FleetAccumulator {
	return &FleetAccumulator{
		ranks:   ranks,
		spill:   spill,
		budget:  budget,
		pending: make(map[int]*parkedPartial),
		byHi:    make(map[int]int),
	}
}

// RankDone ticks the per-rank progress counter; callers folding ranks
// into a batch partial call it once per folded rank.
func (a *FleetAccumulator) RankDone() { a.ranksDone.Add(1) }

// Add folds one rank outcome and offers it — the single-rank convenience
// over FoldRankOutcome + RankDone + Offer.
func (a *FleetAccumulator) Add(o RankOutcome) error {
	p := FoldRankOutcome(o)
	a.RankDone()
	return a.Offer(p)
}

// Offer hands a partial to the reduction. It repeatedly merges with any
// parked adjacent neighbor (loading spilled neighbors back first) and
// parks the result once no neighbor is waiting. Safe for concurrent use;
// the actual merging runs outside the accumulator lock.
func (a *FleetAccumulator) Offer(p *FleetPartial) error {
	if p == nil {
		return nil
	}
	for {
		a.mu.Lock()
		if lo, ok := a.byHi[p.Lo]; ok { // left neighbor ends where p begins
			pk := a.takeLocked(lo)
			a.mu.Unlock()
			left, err := a.loadParked(pk)
			if err != nil {
				return err
			}
			merged, err := Merge(left, p)
			if err != nil {
				return err
			}
			a.merges.Add(1)
			p = merged
			continue
		}
		if _, ok := a.pending[p.Hi]; ok { // right neighbor begins where p ends
			pk := a.takeLocked(p.Hi)
			a.mu.Unlock()
			right, err := a.loadParked(pk)
			if err != nil {
				return err
			}
			merged, err := Merge(p, right)
			if err != nil {
				return err
			}
			a.merges.Add(1)
			p = merged
			continue
		}
		a.parkLocked(p)
		a.mu.Unlock()
		return nil
	}
}

// takeLocked removes and returns the parked range starting at lo.
// a.mu must be held.
func (a *FleetAccumulator) takeLocked(lo int) *parkedPartial {
	pk := a.pending[lo]
	delete(a.pending, lo)
	delete(a.byHi, pk.hi)
	if pk.p != nil {
		a.resident -= pk.cost
	}
	return pk
}

// loadParked materializes a parked partial, reloading it from the spill
// store when it was sealed to disk.
func (a *FleetAccumulator) loadParked(pk *parkedPartial) (*FleetPartial, error) {
	if pk.p != nil {
		return pk.p, nil
	}
	data, err := a.spill.Get(pk.key)
	if err != nil {
		return nil, fmt.Errorf("ffm: reload spilled fleet partial %s: %w", pk.key, err)
	}
	if err := a.spill.Delete(pk.key); err != nil {
		return nil, fmt.Errorf("ffm: release spilled fleet partial %s: %w", pk.key, err)
	}
	var p FleetPartial
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("ffm: decode spilled fleet partial %s: %w", pk.key, err)
	}
	return &p, nil
}

// parkLocked shelves a partial that has no waiting neighbor, spilling
// parked state to disk while the resident estimate exceeds the budget.
// A spill write failure degrades to keeping the partial in memory — the
// budget is a target, correctness never depends on it. a.mu must be held.
func (a *FleetAccumulator) parkLocked(p *FleetPartial) {
	pk := &parkedPartial{lo: p.Lo, hi: p.Hi, p: p, cost: p.estimateCost()}
	a.pending[pk.lo] = pk
	a.byHi[pk.hi] = pk.lo
	a.resident += pk.cost
	if a.spill == nil || a.budget <= 0 {
		return
	}
	for a.resident > a.budget {
		victim := a.largestResidentLocked()
		if victim == nil {
			return
		}
		data, err := json.Marshal(victim.p)
		if err != nil {
			return
		}
		key := fmt.Sprintf("partial-%d-%d", victim.lo, victim.hi)
		if err := a.spill.Put(key, data); err != nil {
			return
		}
		victim.p = nil
		victim.key = key
		a.resident -= victim.cost
		a.spills.Add(1)
		a.spilledBytes.Add(int64(len(data)))
	}
}

// largestResidentLocked picks the costliest in-memory parked partial (the
// best spill candidate: fewest writes to get under budget). Ties go to
// the lowest range start so the spill schedule is deterministic.
func (a *FleetAccumulator) largestResidentLocked() *parkedPartial {
	var victim *parkedPartial
	for _, pk := range a.pending {
		if pk.p == nil {
			continue
		}
		if victim == nil || pk.cost > victim.cost || (pk.cost == victim.cost && pk.lo < victim.lo) {
			victim = pk
		}
	}
	return victim
}

// estimateCost approximates the partial's resident footprint for the
// spill budget. It is an estimate — slice headers and map overhead are
// charged at flat rates — because the budget bounds order of magnitude,
// not bytes.
func (p *FleetPartial) estimateCost() int64 {
	c := int64(256)
	c += int64(len(p.Failed)) * 8
	for i := range p.Outcomes {
		c += int64(96 + len(p.Outcomes[i].Err))
	}
	for i := range p.Dups {
		c += int64(64 + len(p.Dups[i].Hash) + len(p.Dups[i].Func) + 8*len(p.Dups[i].Ranks))
	}
	for i := range p.Problems {
		c += int64(96 + len(p.Problems[i].Kind) + len(p.Problems[i].Label) + 8*len(p.Problems[i].Ranks))
	}
	return c
}

// Progress snapshots the live counters. Safe to call concurrently with
// Offer, including after Finalize.
func (a *FleetAccumulator) Progress() FleetProgress {
	a.mu.Lock()
	resident := a.resident
	a.mu.Unlock()
	return FleetProgress{
		RanksDone:     int(a.ranksDone.Load()),
		RanksTotal:    a.ranks,
		Merges:        int(a.merges.Load()),
		Spills:        int(a.spills.Load()),
		SpilledBytes:  a.spilledBytes.Load(),
		ResidentBytes: resident,
	}
}

// Finalize completes the reduction: exactly one partial spanning
// [0, ranks) must be pending (every rank offered, every merge drained).
// It assembles and returns the fleet report, releasing all accumulator
// state. A canceled or faulted reduction that left gaps returns an error
// naming the missing ranks instead of a silently truncated report.
func (a *FleetAccumulator) Finalize(app string, skew *FleetSkew) (*FleetReport, error) {
	a.mu.Lock()
	if len(a.pending) != 1 {
		covered := make([]string, 0, len(a.pending))
		for lo, pk := range a.pending {
			covered = append(covered, fmt.Sprintf("[%d,%d)", lo, pk.hi))
		}
		sort.Strings(covered)
		a.mu.Unlock()
		return nil, fmt.Errorf("ffm: fleet reduction incomplete: %d disjoint partials pending (%v), expected one spanning [0,%d)", len(a.pending), covered, a.ranks)
	}
	pk, ok := a.pending[0]
	if !ok || pk.hi != a.ranks {
		a.mu.Unlock()
		return nil, fmt.Errorf("ffm: fleet reduction incomplete: pending partial does not span [0,%d)", a.ranks)
	}
	delete(a.pending, 0)
	delete(a.byHi, pk.hi)
	if pk.p != nil {
		a.resident -= pk.cost
	}
	a.mu.Unlock()
	p, err := a.loadParked(pk)
	if err != nil {
		return nil, err
	}
	return p.assemble(app, a.ranks, skew), nil
}
