package ffm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"diogenes/internal/ffm/graph"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// AnalysisOptions configures stage 5.
type AnalysisOptions struct {
	// MisplacedThreshold is the minimum time-to-first-use for a required
	// synchronization to be classified as misplaced ("a large time gap
	// indicates a potentially misplaced synchronization", §3.4).
	MisplacedThreshold simtime.Duration
	// Graph passes through the benefit-evaluation options.
	Graph graph.Options
}

// DefaultAnalysisOptions returns the thresholds used for the paper's
// experiments.
func DefaultAnalysisOptions() AnalysisOptions {
	return AnalysisOptions{MisplacedThreshold: 40 * simtime.Microsecond}
}

// FuncSaving is one row of the per-API-function expected-savings summary
// (the Diogenes column of Table 2).
type FuncSaving struct {
	Func    string           `json:"func"`
	Savings simtime.Duration `json:"savings"`
	Percent float64          `json:"percent"`
	Pos     int              `json:"pos"`
	Count   int              `json:"count"`
}

// Analysis is stage 5's output.
type Analysis struct {
	App      string
	ExecTime simtime.Duration // execution time the estimates are relative to
	Graph    *graph.Graph

	SinglePoints []graph.Group
	Folds        []graph.Group
	Sequences    []graph.Group
	// Overview merges folded-function and sequence groups sorted by
	// benefit — the Figure 7 top-level display.
	Overview []graph.Group

	Opts AnalysisOptions
}

// Analyze executes stage 5 (§3.5): build the execution graph from the
// annotated trace, classify each operation's problem, and evaluate the
// expected benefit under all three groupings. The run must already carry
// stage 3/4 annotations (and, conventionally, stage 2 timings via
// MatchStage2Timing).
func Analyze(annotated *trace.Run, opts AnalysisOptions) *Analysis {
	g := BuildGraph(annotated, opts)
	a := &Analysis{
		App:      annotated.App,
		ExecTime: annotated.ExecTime,
		Graph:    g,
		Opts:     opts,
	}
	a.SinglePoints = graph.SinglePointGroups(g, opts.Graph)
	a.Folds = graph.FoldedFunctionGroups(g, opts.Graph)
	a.Sequences = graph.Sequences(g, opts.Graph)
	a.Overview = append(append([]graph.Group{}, a.Folds...), a.Sequences...)
	sort.SliceStable(a.Overview, func(i, j int) bool {
		return a.Overview[i].Benefit > a.Overview[j].Benefit
	})
	return a
}

// BuildGraph converts an annotated trace run into the §3.5 execution graph:
// synchronization records become CWait nodes, transfer records CLaunch
// nodes, and the gaps between driver calls CWork nodes. Problem
// classification follows §3.3/§3.4: a synchronization protecting data never
// accessed afterwards is unnecessary; one whose protected data is first
// used a long time later is misplaced; a transfer whose payload hash was
// seen before is an unnecessary (duplicate) transfer.
func BuildGraph(run *trace.Run, opts AnalysisOptions) *graph.Graph {
	g := graph.New(run.ExecTime)
	// One backing array for every node the build can produce (a gap node
	// per record, the record's own node, and the tail), sized up front so
	// pointers into it stay stable: one allocation instead of one per node.
	backing := make([]graph.Node, 0, 2*len(run.Records)+1)
	alloc := func(n graph.Node) *graph.Node {
		backing = append(backing, n)
		return &backing[len(backing)-1]
	}
	var cursor simtime.Time
	for i := range run.Records {
		rec := &run.Records[i]
		if gap := rec.Entry.Sub(cursor); gap > 0 {
			g.AddCPU(alloc(graph.Node{Type: graph.CWork, STime: cursor, OutCPU: gap}))
		}
		n := alloc(graph.Node{
			STime:  rec.Entry,
			OutCPU: rec.Duration(),
			Func:   rec.Func,
			Stack:  rec.Stack,
			Seq:    rec.Seq,
		})
		// Node type: anything that waited on the device is a CWait on the
		// CPU timeline (synchronous transfers included — unrealized wait
		// removed upstream reappears at them); a purely asynchronous
		// transfer is a CLaunch.
		synced := rec.Class == trace.ClassSync || rec.SyncWait > 0
		if synced {
			n.Type = graph.CWait
		} else {
			n.Type = graph.CLaunch
		}
		switch {
		case rec.Class == trace.ClassTransfer && rec.Duplicate:
			// A duplicate transfer is removed wholesale; its implicit
			// synchronization goes with it.
			n.Problem = graph.UnnecessaryTransfer
		case synced && !rec.ProtectedAccess:
			// The synchronization protects data the CPU never reads: for a
			// plain sync it can be deleted; for a synchronous transfer the
			// wait is avoidable (e.g. an async copy into pinned memory).
			n.Problem = graph.UnnecessarySync
		case synced && rec.FirstUse >= opts.MisplacedThreshold:
			n.Problem = graph.MisplacedSync
			n.FirstUseTime = rec.FirstUse
		}
		g.AddCPU(n)
		if rec.Exit > cursor {
			cursor = rec.Exit
		}
	}
	if tail := simtime.Time(run.ExecTime).Sub(cursor); tail > 0 {
		g.AddCPU(alloc(graph.Node{Type: graph.CWork, STime: cursor, OutCPU: tail}))
	}
	return g
}

// Percent expresses a duration as a percentage of the analysed execution
// time.
func (a *Analysis) Percent(d simtime.Duration) float64 {
	if a.ExecTime <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(a.ExecTime)
}

// TotalBenefit returns the plain (ungrouped) expected benefit over all
// problems.
func (a *Analysis) TotalBenefit() simtime.Duration {
	return graph.ExpectedBenefit(a.Graph, a.Opts.Graph).Total
}

// TopGroup returns the highest-benefit overview group, if any.
func (a *Analysis) TopGroup() (graph.Group, bool) {
	if len(a.Overview) == 0 {
		return graph.Group{}, false
	}
	return a.Overview[0], true
}

// ProblemCounts returns how many nodes carry each problem class.
func (a *Analysis) ProblemCounts() map[graph.Problem]int {
	out := make(map[graph.Problem]int)
	for _, n := range a.Graph.ProblematicNodes() {
		out[n.Problem]++
	}
	return out
}

// SavingsByFunc aggregates expected benefit per API function and assigns
// descending positions — the Diogenes column of Table 2. Functions with no
// problematic operations do not appear: "Diogenes does not collect
// performance data on calls that do not contain a problematic
// synchronization or memory transfer operation" (§5.2).
func (a *Analysis) SavingsByFunc() []FuncSaving {
	res := graph.ExpectedBenefit(a.Graph, a.Opts.Graph)
	byFunc := make(map[string]*FuncSaving)
	for _, nb := range res.PerNode {
		fs, ok := byFunc[nb.Node.Func]
		if !ok {
			fs = &FuncSaving{Func: nb.Node.Func}
			byFunc[nb.Node.Func] = fs
		}
		fs.Savings += nb.Benefit
		fs.Count++
	}
	out := make([]FuncSaving, 0, len(byFunc))
	for _, fs := range byFunc {
		fs.Percent = a.Percent(fs.Savings)
		out = append(out, *fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Savings != out[j].Savings {
			return out[i].Savings > out[j].Savings
		}
		return out[i].Func < out[j].Func
	})
	for i := range out {
		out[i].Pos = i + 1
	}
	return out
}

// Subsequence re-evaluates entries [from, to] of the given sequence group
// without further data collection (§5.1, Figure 8).
func (a *Analysis) Subsequence(seq graph.Group, from, to int) (graph.Group, error) {
	return graph.Subsequence(a.Graph, seq, from, to, a.Opts.Graph)
}

// jsonGroup is the export form of a group.
type jsonGroup struct {
	Kind      string           `json:"kind"`
	Label     string           `json:"label"`
	Benefit   simtime.Duration `json:"benefit"`
	Percent   float64          `json:"percent"`
	Syncs     int              `json:"syncIssues"`
	Transfers int              `json:"transferIssues"`
	Entries   []string         `json:"entries,omitempty"`
}

type jsonAnalysis struct {
	App          string           `json:"app"`
	ExecTime     simtime.Duration `json:"execTime"`
	TotalBenefit simtime.Duration `json:"totalBenefit"`
	Overview     []jsonGroup      `json:"overview"`
	SinglePoints []jsonGroup      `json:"singlePoints"`
	Savings      []FuncSaving     `json:"savingsByFunc"`
}

func (a *Analysis) exportGroups(gs []graph.Group, withEntries bool) []jsonGroup {
	out := make([]jsonGroup, 0, len(gs))
	for _, grp := range gs {
		jg := jsonGroup{
			Kind:      grp.Kind.String(),
			Label:     grp.Label,
			Benefit:   grp.Benefit,
			Percent:   a.Percent(grp.Benefit),
			Syncs:     grp.Syncs,
			Transfers: grp.Transfers,
		}
		if withEntries {
			for _, n := range grp.Nodes {
				leaf := n.Stack.Leaf()
				jg.Entries = append(jg.Entries, fmt.Sprintf("%s in %s at line %d", n.Func, leaf.File, leaf.Line))
			}
		}
		out = append(out, jg)
	}
	return out
}

// WriteJSON exports the analysis in the tool's JSON format (§4: "The
// results are sorted by potential benefit and then exported in the JSON
// format, allowing other tools the ability to access data collected by
// Diogenes").
func (a *Analysis) WriteJSON(w io.Writer) error {
	doc := jsonAnalysis{
		App:          a.App,
		ExecTime:     a.ExecTime,
		TotalBenefit: a.TotalBenefit(),
		Overview:     a.exportGroups(a.Overview, true),
		SinglePoints: a.exportGroups(a.SinglePoints, false),
		Savings:      a.SavingsByFunc(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
