package ffm

import (
	"testing"

	"diogenes/internal/cuda"
	"diogenes/internal/interpose"
	"diogenes/internal/proc"
)

func TestSingleRunMissesEarlyOperations(t *testing.T) {
	app := &testApp{iters: 4}
	factory := proc.DefaultFactory()
	funnel, err := interpose.Discover(func() *cuda.Context { return factory.New().Ctx })
	if err != nil {
		t.Fatal(err)
	}

	single, err := RunSingleRun(app, factory, funnel, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	// Each synchronizing API function's first occurrence is missed: the
	// test app synchronizes via cudaMemcpy, cudaDeviceSynchronize and
	// cudaFree, so at least 3 events are lost.
	if single.MissedSyncs < 3 {
		t.Fatalf("MissedSyncs = %d, want >= 3 (one per late-discovered function)",
			single.MissedSyncs)
	}
	if single.ObservedSyncs == 0 {
		t.Fatal("nothing observed after discovery")
	}
	f := single.MissedFraction()
	if f <= 0 || f >= 1 {
		t.Fatalf("MissedFraction = %v", f)
	}

	// The multi-run pipeline captures every occurrence.
	base, err := RunBaseline(app, factory, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunDetailedTracing(app, factory, base, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	multiSyncs := int64(0)
	for _, rec := range multi.Records {
		if rec.SyncWait > 0 || rec.Class == "sync" {
			multiSyncs++
		}
	}
	if int64(len(single.Run.Records)) >= int64(len(multi.Records)) {
		t.Fatalf("single-run traced %d records, multi-run %d — multi must see more",
			len(single.Run.Records), len(multi.Records))
	}
	if single.ObservedSyncs+single.MissedSyncs != base.SyncEvents {
		t.Fatalf("event accounting: single %d+%d vs baseline %d",
			single.ObservedSyncs, single.MissedSyncs, base.SyncEvents)
	}
}

func TestSingleRunMissedFractionShrinksWithLength(t *testing.T) {
	// The longer the run, the smaller the missed share — but it never
	// reaches zero, which is §2.1's point: a single fixed run always pays
	// a discovery gap.
	factory := proc.DefaultFactory()
	funnel, err := interpose.Discover(func() *cuda.Context { return factory.New().Ctx })
	if err != nil {
		t.Fatal(err)
	}
	short, err := RunSingleRun(&testApp{iters: 2}, factory, funnel, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunSingleRun(&testApp{iters: 12}, factory, funnel, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if long.MissedFraction() >= short.MissedFraction() {
		t.Fatalf("missed fraction did not shrink: short %.3f, long %.3f",
			short.MissedFraction(), long.MissedFraction())
	}
	if long.MissedSyncs == 0 {
		t.Fatal("discovery gap vanished entirely")
	}
}

func TestMissedFractionEmpty(t *testing.T) {
	r := &SingleRunResult{}
	if r.MissedFraction() != 0 {
		t.Fatal("empty result should report 0")
	}
}
