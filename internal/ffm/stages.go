// Package ffm implements the feed-forward measurement model: the paper's
// primary contribution. It orchestrates the five stages of §3 — baseline
// measurement, detailed tracing, memory tracing and data hashing, sync-use
// analysis, and the benefit analysis — each data-collection stage executing
// the target application in a fresh simulated process with instrumentation
// chosen from what the previous stages learned.
package ffm

import (
	"fmt"

	"diogenes/internal/cuda"
	"diogenes/internal/hashstore"
	"diogenes/internal/interpose"
	"diogenes/internal/memory"
	"diogenes/internal/obs"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// Overheads sets the virtual-time cost of each instrumentation mechanism.
// These drive the §5.3 observation that full data collection costs 8×–20×
// the uninstrumented execution time.
type Overheads struct {
	// Stage1Probe is the lightweight baseline probe cost per sync event.
	Stage1Probe simtime.Duration
	// Stage2Probe is the entry/exit tracing cost per probed call edge.
	Stage2Probe simtime.Duration
	// Stage3Probe is stage 3's per-call cost (stack walk + bookkeeping).
	Stage3Probe simtime.Duration
	// HashPerKB is the data-hashing cost per KiB of transfer payload.
	HashPerKB simtime.Duration
	// AccessOverhead is the load/store instrumentation cost per watched
	// CPU access in stage 3.
	AccessOverhead simtime.Duration
	// Stage4Probe is stage 4's per-event cost (timers on selected sites).
	Stage4Probe simtime.Duration
}

// DefaultOverheads returns costs calibrated so the full pipeline lands in
// the paper's 8×–20× data-collection range on the modelled applications.
func DefaultOverheads() Overheads {
	return Overheads{
		// Stages 1 and 2 stay lightweight: stage 2's timings feed the
		// benefit model, so its probes must not distort waits.
		Stage1Probe: 2 * simtime.Microsecond,
		Stage2Probe: 20 * simtime.Microsecond,
		// Stage 3 is where the paper's 8×–20× collection cost comes from:
		// trampoline + stack walk + range bookkeeping per traced call, and
		// content hashing per payload kilobyte. (Payload sizes are scaled
		// down with the workloads; the per-KB cost is not, preserving the
		// full-scale hashing burden.)
		Stage3Probe:    800 * simtime.Microsecond,
		HashPerKB:      2600 * simtime.Microsecond,
		AccessOverhead: 40 * simtime.Microsecond,
		Stage4Probe:    150 * simtime.Microsecond,
	}
}

// transferFuncs is the predefined set of driver API functions "described by
// the GPU driver API as performing memory transfers" (§3.2) that stage 2
// traces in addition to the synchronizing functions stage 1 discovered.
var transferFuncs = []cuda.Func{
	cuda.FuncMemcpy, cuda.FuncMemcpyAsync, cuda.FuncMemset, cuda.FuncPrivateMemcpy,
}

// BaselineResult is stage 1's product (§3.1).
type BaselineResult struct {
	ExecTime   simtime.Duration
	TotalCalls int64
	// SyncFunnel is the internal driver function identified by the
	// never-completing-kernel discovery test.
	SyncFunnel cuda.Func
	// SyncFuncs lists the API functions observed performing a
	// synchronization, in first-seen order. This is the list stage 2
	// instruments.
	SyncFuncs []cuda.Func
	// SyncCounts counts synchronizations per API function.
	SyncCounts map[cuda.Func]int64
	// SyncEvents is the total number of synchronizations observed.
	SyncEvents int64
	// ProbeOverhead is the virtual time the stage-1 probe itself charged —
	// the instrumented share of ExecTime, surfaced for the self-overhead
	// accounting.
	ProbeOverhead simtime.Duration
}

// RunBaseline executes stage 1: discover the internal synchronization
// funnel, then run the application with a single lightweight probe on it,
// recording which API functions synchronize and the overall execution time.
func RunBaseline(app proc.App, factory proc.Factory, ov Overheads) (*BaselineResult, error) {
	return runBaseline(app, factory, ov, nil)
}

// runBaseline is RunBaseline with a self-measurement registry attached to
// the stage's process (nil for the unobserved path).
func runBaseline(app proc.App, factory proc.Factory, ov Overheads, mets *obs.Registry) (*BaselineResult, error) {
	funnel, err := interpose.Discover(func() *cuda.Context { return factory.New().Ctx })
	if err != nil {
		return nil, fmt.Errorf("ffm stage 1: %w", err)
	}

	p := factory.New()
	p.Ctx.SetMetrics(mets)
	res := &BaselineResult{SyncFunnel: funnel, SyncCounts: make(map[cuda.Func]int64)}
	p.Ctx.AttachProbe(funnel, cuda.Probe{
		Overhead: ov.Stage1Probe,
		Exit: func(c *cuda.Call) {
			res.SyncEvents++
			if res.SyncCounts[c.Caller] == 0 {
				res.SyncFuncs = append(res.SyncFuncs, c.Caller)
			}
			res.SyncCounts[c.Caller]++
		},
	})
	if err := proc.SafeRun(app, p); err != nil {
		return nil, fmt.Errorf("ffm stage 1: running %s: %w", app.Name(), err)
	}
	res.ExecTime = p.ExecTime()
	res.TotalCalls = p.Ctx.TotalCalls()
	res.ProbeOverhead = p.Ctx.InstrumentationOverhead()
	return res, nil
}

// tracedFuncs merges stage 1's synchronizing functions with the predefined
// transfer functions, preserving order and uniqueness.
func tracedFuncs(base *BaselineResult) []cuda.Func {
	seen := make(map[cuda.Func]bool)
	var out []cuda.Func
	for _, fn := range base.SyncFuncs {
		if !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	for _, fn := range transferFuncs {
		if !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	return out
}

// RunDetailedTracing executes stage 2 (§3.2): entry/exit tracing of every
// synchronizing function found in stage 1 plus the transfer functions,
// recording per-call duration, synchronization wait and a stack trace.
func RunDetailedTracing(app proc.App, factory proc.Factory, base *BaselineResult, ov Overheads) (*trace.Run, error) {
	return runDetailedTracing(app, factory, base, ov, nil)
}

func runDetailedTracing(app proc.App, factory proc.Factory, base *BaselineResult, ov Overheads, mets *obs.Registry) (*trace.Run, error) {
	p := factory.New()
	p.Ctx.SetMetrics(mets)
	tracer := interpose.NewCallTracer(p.Ctx, tracedFuncs(base), interpose.TracerOptions{
		Overhead:      ov.Stage2Probe,
		CaptureStacks: true,
		Metrics:       mets,
	})
	if err := proc.SafeRun(app, p); err != nil {
		return nil, fmt.Errorf("ffm stage 2: running %s: %w", app.Name(), err)
	}
	return &trace.Run{
		App:         app.Name(),
		Stage:       2,
		ExecTime:    p.ExecTime() - p.Ctx.InstrumentationOverhead(),
		RawExecTime: p.ExecTime(),
		TotalCalls:  p.Ctx.TotalCalls(),
		SyncFuncs:   funcsToStrings(base.SyncFuncs),
		Records:     tracer.Records(),
	}, nil
}

func funcsToStrings(fns []cuda.Func) []string {
	out := make([]string, len(fns))
	for i, fn := range fns {
		out[i] = string(fn)
	}
	return out
}

// RunMemoryTracing executes stage 3 (§3.3): it re-runs the application with
// (a) content hashing of every transfer payload, marking duplicates, and
// (b) load/store instrumentation over the CPU ranges GPU computation may
// modify, recording for each synchronization whether — and where — the
// protected data is accessed afterwards.
func RunMemoryTracing(app proc.App, factory proc.Factory, base *BaselineResult, ov Overheads) (*trace.Run, error) {
	return runMemoryTracing(app, factory, base, ov, nil)
}

func runMemoryTracing(app proc.App, factory proc.Factory, base *BaselineResult, ov Overheads, mets *obs.Registry) (*trace.Run, error) {
	p := factory.New()
	p.Ctx.SetMetrics(mets)

	store := hashstore.New()
	store.SetMetrics(mets)
	// hashRefs maps record sequence numbers to lazy content-hash handles;
	// the run's hash resolver renders them only if the records are actually
	// exported, so runs that are analyzed but never serialized skip the
	// sha256 work entirely.
	hashRefs := make(map[int64]hashstore.Ref)
	var pendingSync *trace.Record
	var tracker *interpose.RangeTracker
	tracker = interpose.NewRangeTracker(p.Host, p.Clock, ov.AccessOverhead, func(fa interpose.FirstAccess) {
		if pendingSync != nil {
			pendingSync.ProtectedAccess = true
			pendingSync.AccessSite = trace.Site{Function: fa.Site.Function, File: fa.Site.File, Line: fa.Site.Line}
			pendingSync = nil
		}
	})
	tracker.SetCharger(p.Ctx.ChargeOverhead)
	tracker.SetMetrics(mets)

	// Managed allocations publish GPU-writable host ranges even though
	// MallocManaged is neither a sync nor a transfer, so track it with a
	// dedicated probe.
	p.Ctx.AttachProbe(cuda.FuncMallocManaged, cuda.Probe{
		Overhead: ov.Stage3Probe,
		Exit: func(c *cuda.Call) {
			if c.HostSize > 0 {
				tracker.AddRange(memory.Addr(c.HostAddr), memory.Addr(c.HostAddr)+memory.Addr(c.HostSize))
			}
		},
	})

	tracer := interpose.NewCallTracer(p.Ctx, tracedFuncs(base), interpose.TracerOptions{
		Overhead:        ov.Stage3Probe,
		CaptureStacks:   true,
		CapturePayloads: true,
		Metrics:         mets,
		OnRecord: func(rec *trace.Record, call *cuda.Call) {
			if rec.Class == trace.ClassTransfer {
				if call.Payload != nil {
					// Charge the hashing cost before consulting the store.
					// The charge models full sha256 hashing and is part of
					// the reproduced §5 numbers; the store underneath may
					// classify without hashing, but that saves host time
					// only, never virtual time.
					kb := (len(call.Payload) + 1023) / 1024
					p.Ctx.ChargeOverhead(simtime.Duration(kb) * ov.HashPerKB)
					dup, first, ref := store.Insert(call.Payload, rec.Seq)
					rec.Duplicate = dup
					rec.FirstSeq = first
					hashRefs[rec.Seq] = ref
				}
				// Device-to-host destinations become GPU-writable ranges.
				if call.Dir == cuda.DirD2H && call.HostSize > 0 {
					tracker.AddRange(memory.Addr(call.HostAddr), memory.Addr(call.HostAddr)+memory.Addr(call.HostSize))
				}
			}
			// Every synchronization (including a transfer's implicit one)
			// arms the tracker: the next access to protected data resolves
			// the *most recent* synchronization.
			if rec.SyncWait > 0 || rec.Class == trace.ClassSync {
				pendingSync = rec
				tracker.Arm()
			}
		},
	})

	if err := proc.SafeRun(app, p); err != nil {
		return nil, fmt.Errorf("ffm stage 3: running %s: %w", app.Name(), err)
	}
	run := &trace.Run{
		App:         app.Name(),
		Stage:       3,
		ExecTime:    p.ExecTime() - p.Ctx.InstrumentationOverhead(),
		RawExecTime: p.ExecTime(),
		TotalCalls:  p.Ctx.TotalCalls(),
		SyncFuncs:   funcsToStrings(base.SyncFuncs),
		Records:     tracer.Records(),
	}
	if len(hashRefs) > 0 {
		run.SetHashResolver(func(r *trace.Run) {
			for i := range r.Records {
				rec := &r.Records[i]
				if rec.Hash == "" {
					if ref, ok := hashRefs[rec.Seq]; ok {
						rec.Hash = ref.String()
					}
				}
			}
		})
	}
	return run, nil
}

// RunSyncUse executes stage 4 (§3.4): for the synchronizations stage 3
// found to protect data that *is* accessed, measure the time between the
// end of the synchronization and the first access, instrumenting only the
// access sites stage 3 identified.
//
// The returned run is stage3 with FirstUse annotations merged in; the
// re-execution collects the timings. The second result is the virtual time
// the stage-4 run itself consumed (zero when stage 3 found no access sites
// and no re-run was needed).
func RunSyncUse(app proc.App, factory proc.Factory, base *BaselineResult, stage3 *trace.Run, ov Overheads) (*trace.Run, simtime.Duration, error) {
	run, execTime, _, err := runSyncUse(app, factory, base, stage3, ov, nil)
	return run, execTime, err
}

// runSyncUse is RunSyncUse with a self-measurement registry and a third
// result: the virtual time the stage-4 instrumentation itself charged.
func runSyncUse(app proc.App, factory proc.Factory, base *BaselineResult, stage3 *trace.Run, ov Overheads, mets *obs.Registry) (*trace.Run, simtime.Duration, simtime.Duration, error) {
	// Collect the sites stage 3 identified.
	sites := make(map[memory.Site]bool)
	for _, rec := range stage3.Records {
		if rec.ProtectedAccess && !rec.AccessSite.IsZero() {
			sites[memory.Site{
				Function: rec.AccessSite.Function,
				File:     rec.AccessSite.File,
				Line:     rec.AccessSite.Line,
			}] = true
		}
	}

	firstUse := make(map[int64]simtime.Duration) // record seq -> first use gap
	var stageExec, stageProbe simtime.Duration
	if len(sites) > 0 {
		p := factory.New()
		p.Ctx.SetMetrics(mets)
		var pendingSeq int64
		var pendingEnd simtime.Time // overhead-compensated sync end
		havePending := false

		// Timings are taken on the application's own timeline: the known
		// instrumentation cost is subtracted so the stage's probes cannot
		// push a promptly-used synchronization over the misplaced
		// threshold.
		corrected := func(t simtime.Time) simtime.Time {
			return t.Add(-p.Ctx.InstrumentationOverhead())
		}
		var tracker *interpose.RangeTracker
		tracker = interpose.NewRangeTracker(p.Host, p.Clock, ov.Stage4Probe, func(fa interpose.FirstAccess) {
			if havePending {
				firstUse[pendingSeq] = corrected(fa.At).Sub(pendingEnd)
				havePending = false
			}
		})
		tracker.SetCharger(p.Ctx.ChargeOverhead)
		tracker.SetMetrics(mets)
		tracker.FilterSites(sites)

		p.Ctx.AttachProbe(cuda.FuncMallocManaged, cuda.Probe{Exit: func(c *cuda.Call) {
			if c.HostSize > 0 {
				tracker.AddRange(memory.Addr(c.HostAddr), memory.Addr(c.HostAddr)+memory.Addr(c.HostSize))
			}
		}})

		interpose.NewCallTracer(p.Ctx, tracedFuncs(base), interpose.TracerOptions{
			Overhead: ov.Stage4Probe,
			Metrics:  mets,
			OnRecord: func(rec *trace.Record, call *cuda.Call) {
				if rec.Class == trace.ClassTransfer && call.Dir == cuda.DirD2H && call.HostSize > 0 {
					tracker.AddRange(memory.Addr(call.HostAddr), memory.Addr(call.HostAddr)+memory.Addr(call.HostSize))
				}
				if rec.SyncWait > 0 || rec.Class == trace.ClassSync {
					pendingSeq = rec.Seq
					pendingEnd = corrected(p.Clock.Now())
					havePending = true
					tracker.Arm()
				}
			},
		})

		if err := proc.SafeRun(app, p); err != nil {
			return nil, 0, 0, fmt.Errorf("ffm stage 4: running %s: %w", app.Name(), err)
		}
		stageExec = p.ExecTime()
		stageProbe = p.Ctx.InstrumentationOverhead()
	}

	merged := *stage3
	merged.Stage = 4
	merged.Records = append([]trace.Record(nil), stage3.Records...)
	for i := range merged.Records {
		if d, ok := firstUse[merged.Records[i].Seq]; ok {
			merged.Records[i].FirstUse = d
		}
	}
	return &merged, stageExec, stageProbe, nil
}

// MatchStage2Timing overwrites the stage-3/4 records' timing fields with
// stage 2's lower-overhead measurements, matched by sequence number. The
// heavyweight stages identify *what* is problematic; the benefit estimate
// should use timings from the lightest tracing run so instrumentation cost
// does not inflate the estimates.
func MatchStage2Timing(annotated *trace.Run, stage2 *trace.Run) {
	bySeq := make(map[int64]*trace.Record, len(stage2.Records))
	for i := range stage2.Records {
		bySeq[stage2.Records[i].Seq] = &stage2.Records[i]
	}
	for i := range annotated.Records {
		if src, ok := bySeq[annotated.Records[i].Seq]; ok {
			annotated.Records[i].Entry = src.Entry
			annotated.Records[i].Exit = src.Exit
			annotated.Records[i].SyncWait = src.SyncWait
		}
	}
	annotated.ExecTime = stage2.ExecTime
}
