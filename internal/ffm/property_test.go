package ffm

// Whole-pipeline property tests: the five stages plus analysis run over
// seeded random workloads (apps.RandomApp), checking invariants no matter
// what call pattern the generator produces.

import (
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/proc"
)

func randomReport(t *testing.T, seed uint64) *Report {
	t.Helper()
	rep, err := Run(apps.NewRandomApp(seed, 60), DefaultConfig())
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return rep
}

func TestPropertyPipelineInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		rep := randomReport(t, seed)
		a := rep.Analysis

		if err := a.Graph.Validate(); err != nil {
			t.Fatalf("seed %d: invalid graph: %v", seed, err)
		}
		total := a.TotalBenefit()
		if total < 0 {
			t.Fatalf("seed %d: negative benefit %v", seed, total)
		}
		// The (unclamped) estimate is bounded by total CPU edge time plus
		// stage-4 first-use credits; a sane ceiling is 2x execution.
		if total > 2*a.ExecTime {
			t.Fatalf("seed %d: benefit %v exceeds 2x execution %v", seed, total, a.ExecTime)
		}
		// Groupings partition the same per-node benefits: single-point sums
		// equal the plain total.
		var pointSum, foldSum int64
		for _, g := range a.SinglePoints {
			pointSum += int64(g.Benefit)
		}
		for _, g := range a.Folds {
			foldSum += int64(g.Benefit)
		}
		if pointSum != int64(total) || foldSum != int64(total) {
			t.Fatalf("seed %d: grouping sums diverge: points %d folds %d total %d",
				seed, pointSum, foldSum, int64(total))
		}
		// Collection always costs more than the uninstrumented run.
		if rep.CollectionCost() <= rep.UninstrumentedTime {
			t.Fatalf("seed %d: collection cost accounting broken", seed)
		}
	}
}

func TestPropertyPipelineDeterministic(t *testing.T) {
	for seed := uint64(20); seed <= 23; seed++ {
		a := randomReport(t, seed)
		b := randomReport(t, seed)
		if a.UninstrumentedTime != b.UninstrumentedTime {
			t.Fatalf("seed %d: exec time differs", seed)
		}
		if a.Analysis.TotalBenefit() != b.Analysis.TotalBenefit() {
			t.Fatalf("seed %d: benefit differs", seed)
		}
		ra, rb := a.Trace.Records, b.Trace.Records
		if len(ra) != len(rb) {
			t.Fatalf("seed %d: record counts differ: %d vs %d", seed, len(ra), len(rb))
		}
		for i := range ra {
			x, y := ra[i], rb[i]
			if x.Func != y.Func || x.Entry != y.Entry || x.Exit != y.Exit ||
				x.Duplicate != y.Duplicate || x.ProtectedAccess != y.ProtectedAccess ||
				x.FirstUse != y.FirstUse {
				t.Fatalf("seed %d: record %d differs between runs:\n%+v\n%+v", seed, i, x, y)
			}
		}
	}
}

func TestPropertyRecordsWellFormed(t *testing.T) {
	for seed := uint64(30); seed <= 35; seed++ {
		rep := randomReport(t, seed)
		var prevEntry int64 = -1
		for i, rec := range rep.Trace.Records {
			if rec.Exit < rec.Entry {
				t.Fatalf("seed %d rec %d: exit before entry", seed, i)
			}
			if rec.SyncWait < 0 || rec.SyncWait > rec.Duration() {
				t.Fatalf("seed %d rec %d: sync wait %v outside call %v",
					seed, i, rec.SyncWait, rec.Duration())
			}
			if int64(rec.Entry) < prevEntry {
				t.Fatalf("seed %d rec %d: records out of order", seed, i)
			}
			prevEntry = int64(rec.Entry)
			if len(rec.Stack) == 0 {
				t.Fatalf("seed %d rec %d: missing stack", seed, i)
			}
		}
	}
}

func TestPropertyMultiDevicePipeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factory = proc.Factory{
		GPU: cfg.Factory.GPU, CUDA: cfg.Factory.CUDA, Devices: 3,
	}
	for seed := uint64(40); seed <= 43; seed++ {
		app := apps.NewRandomApp(seed, 50)
		app.MaxDevices = 3
		rep, err := Run(app, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Analysis.Graph.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
