package ffm

import (
	"sort"

	"diogenes/internal/ffm/graph"
	"diogenes/internal/simtime"
)

// APIFold is the Figure 7 display unit: all problematic operations of one
// CUDA API function folded together ("Fold on cudaFree"), expandable into
// the demangled calling functions responsible ("Expansion of Problem" —
// thrust::detail::contiguous_storage<...>, thrust::pair<...>, ...).
type APIFold struct {
	Func    string
	Benefit simtime.Duration
	Percent float64
	// Children break the fold down by demangled base name of the calling
	// function, descending by benefit.
	Children []APIFoldChild
}

// APIFoldChild is one calling-function expansion entry.
type APIFoldChild struct {
	// Caller is the *mangled* name of a representative instantiation, the
	// way the tool displays it (Figure 7 shows template parameters
	// abbreviated; reports render Caller directly).
	Caller string
	// Base is the demangled fold key the instantiations share.
	Base    string
	Benefit simtime.Duration
	Percent float64
	Count   int
}

// APIFolds groups the per-node expected benefits by API function and, within
// each, by the demangled base name of the immediate calling function.
func (a *Analysis) APIFolds() []APIFold {
	res := graph.ExpectedBenefit(a.Graph, a.Opts.Graph)
	type childAcc struct {
		caller  string
		benefit simtime.Duration
		count   int
	}
	folds := make(map[string]*APIFold)
	children := make(map[string]map[string]*childAcc)
	var order []string

	for _, nb := range res.PerNode {
		fn := nb.Node.Func
		f, ok := folds[fn]
		if !ok {
			f = &APIFold{Func: fn}
			folds[fn] = f
			children[fn] = make(map[string]*childAcc)
			order = append(order, fn)
		}
		f.Benefit += nb.Benefit
		leaf := nb.Node.Stack.Leaf()
		base := leaf.BaseName()
		c, ok := children[fn][base]
		if !ok {
			c = &childAcc{caller: leaf.Function}
			children[fn][base] = c
		}
		c.benefit += nb.Benefit
		c.count++
	}

	out := make([]APIFold, 0, len(folds))
	for _, fn := range order {
		f := folds[fn]
		f.Percent = a.Percent(f.Benefit)
		for base, c := range children[fn] {
			f.Children = append(f.Children, APIFoldChild{
				Caller:  c.caller,
				Base:    base,
				Benefit: c.benefit,
				Percent: a.Percent(c.benefit),
				Count:   c.count,
			})
		}
		sort.Slice(f.Children, func(i, j int) bool {
			if f.Children[i].Benefit != f.Children[j].Benefit {
				return f.Children[i].Benefit > f.Children[j].Benefit
			}
			return f.Children[i].Base < f.Children[j].Base
		})
		out = append(out, *f)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Benefit > out[j].Benefit })
	return out
}
