package ffm

import (
	"bytes"
	"encoding/json"
	"io"

	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// jsonReport is the serialized form of a full pipeline Report: every
// collected artifact — baseline, annotated trace, device-operation log,
// stage costs and the stage-5 analysis — in one deterministic document.
// The determinism harness compares serial and parallel pipeline executions
// byte-for-byte on this encoding, so it must contain no map iteration
// order, pointers, or wall-clock values (encoding/json sorts map keys,
// which covers the baseline's per-function sync counts).
type jsonReport struct {
	App                string           `json:"app"`
	UninstrumentedTime simtime.Duration `json:"uninstrumentedTime"`
	Stage1Time         simtime.Duration `json:"stage1Time"`
	Stage2Time         simtime.Duration `json:"stage2Time"`
	Stage3Time         simtime.Duration `json:"stage3Time"`
	Stage4Time         simtime.Duration `json:"stage4Time"`
	Stage1Overhead     simtime.Duration `json:"stage1Overhead"`
	Stage2Overhead     simtime.Duration `json:"stage2Overhead"`
	Stage3Overhead     simtime.Duration `json:"stage3Overhead"`
	Stage4Overhead     simtime.Duration `json:"stage4Overhead"`
	CollectionCost     simtime.Duration `json:"collectionCost"`
	OverheadMultiple   float64          `json:"overheadMultiple"`
	Baseline           *BaselineResult  `json:"baseline,omitempty"`
	Trace              json.RawMessage  `json:"trace,omitempty"`
	DeviceOps          []*gpu.Op        `json:"deviceOps,omitempty"`
	Analysis           json.RawMessage  `json:"analysis,omitempty"`
}

// WriteJSON exports the complete report in the tool's JSON format. The
// encoding is deterministic: two Reports produced by identical pipelines —
// serial or parallel, in any stage interleaving — serialize to identical
// bytes.
func (r *Report) WriteJSON(w io.Writer) error {
	doc := jsonReport{
		App:                r.App,
		UninstrumentedTime: r.UninstrumentedTime,
		Stage1Time:         r.Stage1Time,
		Stage2Time:         r.Stage2Time,
		Stage3Time:         r.Stage3Time,
		Stage4Time:         r.Stage4Time,
		Stage1Overhead:     r.Stage1Overhead,
		Stage2Overhead:     r.Stage2Overhead,
		Stage3Overhead:     r.Stage3Overhead,
		Stage4Overhead:     r.Stage4Overhead,
		CollectionCost:     r.CollectionCost(),
		OverheadMultiple:   r.OverheadMultiple(),
		Baseline:           r.Baseline,
		DeviceOps:          r.DeviceOps,
	}
	if r.Trace != nil {
		var buf bytes.Buffer
		if err := r.Trace.WriteJSON(&buf); err != nil {
			return err
		}
		doc.Trace = buf.Bytes()
	}
	if r.Analysis != nil {
		var buf bytes.Buffer
		if err := r.Analysis.WriteJSON(&buf); err != nil {
			return err
		}
		doc.Analysis = buf.Bytes()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
