package ffm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// jsonReport is the serialized form of a full pipeline Report: every
// collected artifact — baseline, annotated trace, device-operation log,
// stage costs and the stage-5 analysis — in one deterministic document.
// The determinism harness compares serial and parallel pipeline executions
// byte-for-byte on this encoding, so it must contain no map iteration
// order, pointers, or wall-clock values (encoding/json sorts map keys,
// which covers the baseline's per-function sync counts).
type jsonReport struct {
	App                string           `json:"app"`
	UninstrumentedTime simtime.Duration `json:"uninstrumentedTime"`
	Stage1Time         simtime.Duration `json:"stage1Time"`
	Stage2Time         simtime.Duration `json:"stage2Time"`
	Stage3Time         simtime.Duration `json:"stage3Time"`
	Stage4Time         simtime.Duration `json:"stage4Time"`
	Stage1Overhead     simtime.Duration `json:"stage1Overhead"`
	Stage2Overhead     simtime.Duration `json:"stage2Overhead"`
	Stage3Overhead     simtime.Duration `json:"stage3Overhead"`
	Stage4Overhead     simtime.Duration `json:"stage4Overhead"`
	CollectionCost     simtime.Duration `json:"collectionCost"`
	OverheadMultiple   float64          `json:"overheadMultiple"`
	Baseline           *BaselineResult  `json:"baseline,omitempty"`
	Trace              json.RawMessage  `json:"trace,omitempty"`
	DeviceOps          []*gpu.Op        `json:"deviceOps,omitempty"`
	Analysis           json.RawMessage  `json:"analysis,omitempty"`
}

// WriteJSON exports the complete report in the tool's JSON format. The
// encoding is deterministic: two Reports produced by identical pipelines —
// serial or parallel, in any stage interleaving — serialize to identical
// bytes.
func (r *Report) WriteJSON(w io.Writer) error {
	doc := jsonReport{
		App:                r.App,
		UninstrumentedTime: r.UninstrumentedTime,
		Stage1Time:         r.Stage1Time,
		Stage2Time:         r.Stage2Time,
		Stage3Time:         r.Stage3Time,
		Stage4Time:         r.Stage4Time,
		Stage1Overhead:     r.Stage1Overhead,
		Stage2Overhead:     r.Stage2Overhead,
		Stage3Overhead:     r.Stage3Overhead,
		Stage4Overhead:     r.Stage4Overhead,
		CollectionCost:     r.CollectionCost(),
		OverheadMultiple:   r.OverheadMultiple(),
		Baseline:           r.Baseline,
		DeviceOps:          r.DeviceOps,
	}
	if r.Trace != nil {
		var buf bytes.Buffer
		if err := r.Trace.WriteJSON(&buf); err != nil {
			return err
		}
		doc.Trace = buf.Bytes()
	}
	if r.Analysis != nil {
		var buf bytes.Buffer
		if err := r.Analysis.WriteJSON(&buf); err != nil {
			return err
		}
		doc.Analysis = buf.Bytes()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// ReadReportJSON parses a report document written by WriteJSON back into a
// Report: the identity, stage times and overheads, baseline, annotated
// trace (validated through the trace interchange reader) and device
// operation log — everything a renderer needs to reconstruct the timeline
// model. The stage-5 Analysis is not reconstructed (its in-memory form is
// a graph, not a document); Analysis stays nil on the returned report.
func ReadReportJSON(r io.Reader) (*Report, error) {
	var doc jsonReport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("ffm: decoding report: %w", err)
	}
	rep := &Report{
		App:                doc.App,
		UninstrumentedTime: doc.UninstrumentedTime,
		Stage1Time:         doc.Stage1Time,
		Stage2Time:         doc.Stage2Time,
		Stage3Time:         doc.Stage3Time,
		Stage4Time:         doc.Stage4Time,
		Stage1Overhead:     doc.Stage1Overhead,
		Stage2Overhead:     doc.Stage2Overhead,
		Stage3Overhead:     doc.Stage3Overhead,
		Stage4Overhead:     doc.Stage4Overhead,
		Baseline:           doc.Baseline,
		DeviceOps:          doc.DeviceOps,
	}
	if len(doc.Trace) > 0 {
		run, err := trace.ReadJSON(bytes.NewReader(doc.Trace))
		if err != nil {
			return nil, fmt.Errorf("ffm: report trace: %w", err)
		}
		rep.Trace = run
	}
	return rep, nil
}
