package ffm

import (
	"fmt"

	"diogenes/internal/cuda"
	"diogenes/internal/interpose"
	"diogenes/internal/proc"
	"diogenes/internal/trace"
)

// This file implements the single-run ablation motivating FFM's multi-run
// design (§2.1): "Paradyn performs multiple stages of instrumentation over a
// single run of the application. ... operations that are impactful can be
// missed if the operation completes before Paradyn determines the operation
// is important. To avoid potential gaps in collection and analysis, FFM
// uses a multi-run model to ensure that all important operations are known
// in advance so that detail is not missed."
//
// RunSingleRun performs stage-1 discovery and stage-2 tracing inside one
// execution: the internal sync funnel is watched from the start, and a
// detailed tracer is attached to each synchronizing API function only when
// that function is *first observed* synchronizing. Every occurrence before
// its function's discovery is lost — the gap the multi-run model closes.

// SingleRunResult is the outcome of the single-run ablation.
type SingleRunResult struct {
	Run *trace.Run
	// MissedSyncs counts synchronization events that occurred before their
	// API function had been discovered and instrumented — detail a
	// single-run tool permanently loses.
	MissedSyncs int64
	// ObservedSyncs counts synchronization events that were fully traced.
	ObservedSyncs int64
}

// MissedFraction returns the share of synchronization events whose detail
// was lost to late discovery.
func (r *SingleRunResult) MissedFraction() float64 {
	total := r.MissedSyncs + r.ObservedSyncs
	if total == 0 {
		return 0
	}
	return float64(r.MissedSyncs) / float64(total)
}

// RunSingleRun executes the Paradyn-style single-run combination of stages
// 1 and 2. The sync funnel must already be known (discovery's spin-kernel
// test cannot run inside a production execution); pass the result of
// interpose.Discover.
func RunSingleRun(app proc.App, factory proc.Factory, funnel cuda.Func, ov Overheads) (*SingleRunResult, error) {
	p := factory.New()
	res := &SingleRunResult{}

	instrumented := make(map[cuda.Func]bool)
	var tracers []*interpose.CallTracer

	// Watch the funnel from the start. On each synchronization, check
	// whether the responsible API function is instrumented yet; if not,
	// this event's detail is lost and the function is instrumented *from
	// the next occurrence on* — the single-run compromise.
	p.Ctx.AttachProbe(funnel, cuda.Probe{
		Overhead: ov.Stage1Probe,
		Exit: func(c *cuda.Call) {
			if instrumented[c.Caller] {
				res.ObservedSyncs++
				return
			}
			res.MissedSyncs++
			instrumented[c.Caller] = true
			tracers = append(tracers, interpose.NewCallTracer(p.Ctx, []cuda.Func{c.Caller}, interpose.TracerOptions{
				Overhead:      ov.Stage2Probe,
				CaptureStacks: true,
			}))
		},
	})

	if err := proc.SafeRun(app, p); err != nil {
		return nil, fmt.Errorf("ffm single-run: running %s: %w", app.Name(), err)
	}

	run := &trace.Run{
		App:         app.Name(),
		Stage:       2,
		ExecTime:    p.ExecTime() - p.Ctx.InstrumentationOverhead(),
		RawExecTime: p.ExecTime(),
		TotalCalls:  p.Ctx.TotalCalls(),
	}
	for _, t := range tracers {
		recs := t.Records()
		// The tracer was attached from *inside* the discovering call, so
		// its first record never saw entry instrumentation: a real
		// mid-run attach produces no usable record for the call already
		// in flight. Drop it — that is precisely the lost detail.
		if len(recs) > 0 {
			recs = recs[1:]
		}
		run.Records = append(run.Records, recs...)
	}
	res.Run = run
	return res, nil
}
