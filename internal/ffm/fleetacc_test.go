package ffm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"diogenes/internal/ffm/graph"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// synthOutcome fabricates one rank's outcome with enough texture to
// exercise every merge rule: digests shared by all ranks (cross-rank
// duplicates), digests unique to the rank (dropped at assembly), records
// the scan must ignore (wrong class, invalid digest), problem groups
// shared and unique, and a sprinkling of failed ranks.
func synthOutcome(rank int) RankOutcome {
	if rank%13 == 5 {
		return RankOutcome{Rank: rank, Err: "injected rank fault", Attempts: 2, Retried: true}
	}
	run := &trace.Run{App: "synth", ExecTime: 1000}
	var seq int64
	add := func(rec trace.Record) {
		seq++
		rec.Seq = seq
		run.Records = append(run.Records, rec)
	}
	for i := 0; i < 8; i++ {
		add(trace.Record{
			Func: "cudaMemcpy", Class: trace.ClassTransfer,
			Bytes: 4096 + 512*i, Duplicate: i%2 == 1,
			Hash: fmt.Sprintf("%016x", i+1),
		})
	}
	for i := 0; i < 2; i++ {
		add(trace.Record{
			Func: "cudaMemcpyAsync", Class: trace.ClassTransfer,
			Bytes: 1024, Hash: fmt.Sprintf("%08x%08x", rank+1, 0xabc+i),
		})
	}
	add(trace.Record{Func: "cudaMemcpy", Class: trace.ClassTransfer, Bytes: 7, Hash: "not-a-digest"})
	add(trace.Record{Func: "cudaDeviceSynchronize", Class: trace.ClassSync})

	g := graph.New(0)
	g.AddCPU(&graph.Node{Type: graph.CWait, OutCPU: simtime.Duration(1+rank%3) * simtime.Millisecond, Problem: graph.UnnecessarySync})
	an := &Analysis{
		App: "synth", ExecTime: 1000, Graph: g,
		Overview: []graph.Group{
			{Kind: graph.SinglePoint, Label: "cudaFree", Benefit: simtime.Duration(1+(rank*7)%5) * simtime.Millisecond},
			{Kind: graph.SinglePoint, Label: fmt.Sprintf("group%d", rank%4), Benefit: simtime.Duration(100+rank) * simtime.Microsecond},
		},
	}
	rep := &Report{
		App:                "synth",
		UninstrumentedTime: simtime.Duration(10+rank) * simtime.Millisecond,
		Trace:              run,
		Analysis:           an,
	}
	return RankOutcome{Rank: rank, Report: rep, Attempts: 1}
}

func synthOutcomes(ranks int) []RankOutcome {
	out := make([]RankOutcome, ranks)
	for r := range out {
		out[r] = synthOutcome(r)
	}
	return out
}

func reportBytes(t *testing.T, fr *FleetReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFoldReleasesReport is the memory contract: folding strips the
// outcome's report pointer, so the rank's pipeline state is collectable
// the moment the fold returns.
func TestFoldReleasesReport(t *testing.T) {
	p := FoldRankOutcome(synthOutcome(0))
	if len(p.Outcomes) != 1 || p.Outcomes[0].Report != nil {
		t.Fatalf("fold retained the report: %+v", p.Outcomes)
	}
	if p.Outcomes[0].ExecTime == 0 || p.Outcomes[0].Duplicates == 0 {
		t.Fatalf("summary fields not filled: %+v", p.Outcomes[0])
	}
	if len(p.Dups) != 10 { // 8 shared + 2 rank-unique; invalid/non-transfer ignored
		t.Fatalf("leaf kept %d digests, want 10 (single-rank digests must survive until assembly)", len(p.Dups))
	}
}

// TestMergeRequiresAdjacency pins the determinism guard: only partials
// over adjacent rank ranges may merge, in range order.
func TestMergeRequiresAdjacency(t *testing.T) {
	a, b, d := FoldRankOutcome(synthOutcome(0)), FoldRankOutcome(synthOutcome(1)), FoldRankOutcome(synthOutcome(3))
	if _, err := Merge(a, d); err == nil {
		t.Fatal("gap merge accepted")
	}
	if _, err := Merge(b, a); err == nil {
		t.Fatal("reversed merge accepted")
	}
	m, err := Merge(a, b)
	if err != nil || m.Lo != 0 || m.Hi != 2 {
		t.Fatalf("adjacent merge: %v, range [%d,%d)", err, m.Lo, m.Hi)
	}
}

// TestAccumulatorMatchesAggregate is the core equivalence claim: offering
// single-rank folds in any completion order yields a report byte-identical
// to AggregateFleet over the same outcomes.
func TestAccumulatorMatchesAggregate(t *testing.T) {
	const ranks = 97
	want := reportBytes(t, AggregateFleet("synth", ranks, synthOutcomes(ranks), nil))
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		acc := NewFleetAccumulator(ranks, nil, 0)
		for _, r := range rng.Perm(ranks) {
			if err := acc.Add(synthOutcome(r)); err != nil {
				t.Fatal(err)
			}
		}
		fr, err := acc.Finalize("synth", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := reportBytes(t, fr); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: streaming report differs from aggregate (%d vs %d bytes)", trial, len(got), len(want))
		}
		p := acc.Progress()
		if p.RanksDone != ranks || p.RanksTotal != ranks {
			t.Fatalf("progress %+v, want %d/%d ranks", p, ranks, ranks)
		}
		if p.Merges < ranks-1 {
			t.Fatalf("merges = %d, want >= %d", p.Merges, ranks-1)
		}
	}
}

// TestAccumulatorBatchedOffers is the same equivalence under the engine's
// real shape: contiguous batches of varying size folded locally, offered
// in random completion order.
func TestAccumulatorBatchedOffers(t *testing.T) {
	const ranks = 64
	want := reportBytes(t, AggregateFleet("synth", ranks, synthOutcomes(ranks), nil))
	rng := rand.New(rand.NewSource(7))
	for _, batch := range []int{1, 3, 16, 64} {
		var parts []*FleetPartial
		for lo := 0; lo < ranks; lo += batch {
			hi := lo + batch
			if hi > ranks {
				hi = ranks
			}
			var part *FleetPartial
			for r := lo; r < hi; r++ {
				var err error
				if part, err = Merge(part, FoldRankOutcome(synthOutcome(r))); err != nil {
					t.Fatal(err)
				}
			}
			parts = append(parts, part)
		}
		acc := NewFleetAccumulator(ranks, nil, 0)
		for _, i := range rng.Perm(len(parts)) {
			for r := 0; r < parts[i].Hi-parts[i].Lo; r++ {
				acc.RankDone()
			}
			if err := acc.Offer(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		fr, err := acc.Finalize("synth", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := reportBytes(t, fr); !bytes.Equal(got, want) {
			t.Fatalf("batch=%d: streaming report differs from aggregate", batch)
		}
	}
}

// TestAccumulatorSpills forces the budget low enough that parked partials
// must spill, offers ranks in the worst order (all evens, then all odds —
// nothing merges until the odds arrive), and asserts the report is still
// byte-identical, the spill store was exercised, and every spill file was
// reclaimed.
func TestAccumulatorSpills(t *testing.T) {
	const ranks = 32
	want := reportBytes(t, AggregateFleet("synth", ranks, synthOutcomes(ranks), nil))
	dir := t.TempDir()
	spill, err := NewFileSpill(dir)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewFleetAccumulator(ranks, spill, 1) // 1 byte: everything parked spills
	for r := 0; r < ranks; r += 2 {
		if err := acc.Add(synthOutcome(r)); err != nil {
			t.Fatal(err)
		}
	}
	if p := acc.Progress(); p.Spills == 0 || p.SpilledBytes == 0 {
		t.Fatalf("no spills under a 1-byte budget: %+v", p)
	}
	for r := 1; r < ranks; r += 2 {
		if err := acc.Add(synthOutcome(r)); err != nil {
			t.Fatal(err)
		}
	}
	fr, err := acc.Finalize("synth", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, fr); !bytes.Equal(got, want) {
		t.Fatal("spilled reduction differs from in-memory aggregate")
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("spill files leaked after finalize: %v", left)
	}
}

// TestAccumulatorIncompleteFinalize: a reduction with missing ranks must
// refuse to assemble rather than return a silently truncated report.
func TestAccumulatorIncompleteFinalize(t *testing.T) {
	acc := NewFleetAccumulator(8, nil, 0)
	for r := 0; r < 4; r++ {
		if err := acc.Add(synthOutcome(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := acc.Finalize("synth", nil); err == nil {
		t.Fatal("finalize accepted a reduction missing ranks 4-7")
	}
	acc2 := NewFleetAccumulator(8, nil, 0)
	if err := acc2.Offer(FoldRankOutcome(synthOutcome(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := acc2.Finalize("synth", nil); err == nil {
		t.Fatal("finalize accepted a single partial not starting at rank 0")
	}
}

// TestFileSpillRoundTrip pins the spill codec: a partial survives the
// JSON round-trip with its merge state intact (indexes rebuild lazily).
func TestFileSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spill, err := NewFileSpill(dir)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewFleetAccumulator(4, spill, 1)
	// Park+spill [0,2), then offer [2,4) which must reload and merge it.
	left, err := Merge(FoldRankOutcome(synthOutcome(0)), FoldRankOutcome(synthOutcome(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Offer(left); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "partial-0-2.json")); err != nil {
		t.Fatalf("expected spilled partial on disk: %v", err)
	}
	right, err := Merge(FoldRankOutcome(synthOutcome(2)), FoldRankOutcome(synthOutcome(3)))
	if err != nil {
		t.Fatal(err)
	}
	acc.RankDone()
	acc.RankDone()
	acc.RankDone()
	acc.RankDone()
	if err := acc.Offer(right); err != nil {
		t.Fatal(err)
	}
	fr, err := acc.Finalize("synth", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, AggregateFleet("synth", 4, synthOutcomes(4), nil))
	if got := reportBytes(t, fr); !bytes.Equal(got, want) {
		t.Fatal("round-tripped reduction differs from aggregate")
	}
}
