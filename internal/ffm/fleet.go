package ffm

import (
	"encoding/json"
	"io"
	"sort"

	"diogenes/internal/hashstore"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// RankOutcome is one rank's pipeline outcome within a fleet analysis. The
// full Report stays in memory for aggregation but is excluded from the
// serialized fleet document; the summary fields below travel instead.
type RankOutcome struct {
	Rank   int     `json:"rank"`
	Report *Report `json:"-"`
	// Err is the final error message when the rank failed both attempts.
	Err string `json:"error,omitempty"`
	// Attempts is 1 for a clean first run, 2 when the rank was retried.
	Attempts int  `json:"attempts"`
	Retried  bool `json:"retried,omitempty"`
	// FromCache marks a first attempt served by the report cache.
	FromCache bool `json:"fromCache,omitempty"`

	// Summary fields filled from Report by AggregateFleet.
	ExecTime     simtime.Duration `json:"execTime,omitempty"`
	TotalBenefit simtime.Duration `json:"totalBenefit,omitempty"`
	Problems     int              `json:"problems,omitempty"`
	Duplicates   int              `json:"duplicateTransfers,omitempty"`
}

// Failed reports whether the rank produced no report. It keys on the
// error string, not the in-process Report pointer, so an outcome decoded
// from a serialized fleet document answers the same way.
func (o RankOutcome) Failed() bool { return o.Err != "" }

// FleetDuplicate is one cross-rank duplicate-transfer finding: the same
// payload digest moved between host and device on two or more ranks. The
// per-rank pipelines each flag their own repeats; this merges them into one
// fleet-level finding with the rank list.
type FleetDuplicate struct {
	Hash  string `json:"hash"`
	Func  string `json:"func"`
	Ranks []int  `json:"ranks"`
	// Records is the number of transfer records carrying this digest
	// across all analyzed ranks; Bytes is their total payload volume.
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// FleetProblem aggregates one analysis problem group (same kind and label)
// across the ranks that reported it.
type FleetProblem struct {
	Kind    string           `json:"kind"`
	Label   string           `json:"label"`
	Ranks   []int            `json:"ranks"`
	Total   simtime.Duration `json:"total"`
	Min     simtime.Duration `json:"min"`
	Max     simtime.Duration `json:"max"`
	MinRank int              `json:"minRank"`
	MaxRank int              `json:"maxRank"`
}

// FleetSkewRank is one rank's collective-skew account (mirrors
// mpi.RankSkew without importing the package: ffm stays launch-agnostic).
type FleetSkewRank struct {
	Rank      int              `json:"rank"`
	Waited    simtime.Duration `json:"waited"`
	Charged   simtime.Duration `json:"charged"`
	Straggles int              `json:"straggles"`
}

// FleetBarrier is one skewed collective from the whole-world reference
// run's barrier ledger: when it happened, which rank arrived last, and how
// long every other rank stood waiting. Balanced barriers are not recorded,
// so a perfectly balanced world serializes without a barriers field.
type FleetBarrier struct {
	// Index is the barrier's ordinal among all collectives executed
	// (balanced ones included).
	Index int `json:"index"`
	// Arrive is the straggler's arrival — the moment the wait ended.
	Arrive simtime.Time `json:"arrive"`
	// Latency is the collective's own cost, paid by every rank after
	// Arrive.
	Latency simtime.Duration `json:"latency"`
	// Straggler is the last-arriving rank charged this barrier's wait.
	Straggler int `json:"straggler"`
	// Wait is the total wait across all ranks at this barrier.
	Wait simtime.Duration `json:"wait"`
	// RankWaits is each rank's wait, indexed by rank.
	RankWaits []simtime.Duration `json:"rankWaits"`
}

// FleetSkew is the whole-world collective-skew attribution: wait time is
// charged to the straggler rank that caused it.
type FleetSkew struct {
	// TotalWait is the time all ranks together spent blocked at barriers
	// behind slower ranks (collective latency excluded).
	TotalWait simtime.Duration `json:"totalWait"`
	// Straggler is the rank charged the most wait, or -1 when the world
	// is perfectly balanced.
	Straggler int             `json:"straggler"`
	PerRank   []FleetSkewRank `json:"perRank"`
	// Barriers is the per-collective ledger behind the per-rank totals:
	// one entry per skewed barrier, in execution order. Empty in a
	// balanced world.
	Barriers []FleetBarrier `json:"barriers,omitempty"`
}

// FleetReport is the cluster-wide analysis: every rank's pipeline outcome
// plus the cross-rank aggregates.
type FleetReport struct {
	App   string `json:"app"`
	Ranks int    `json:"ranks"`
	// Analyzed is the number of ranks that produced a report.
	Analyzed int `json:"analyzed"`
	// Partial marks a degraded report: one or more ranks failed both
	// attempts and are missing from the aggregates.
	Partial     bool          `json:"partial"`
	FailedRanks []int         `json:"failedRanks,omitempty"`
	PerRank     []RankOutcome `json:"perRank"`

	Duplicates []FleetDuplicate `json:"crossRankDuplicates"`
	// CrossRankDupBytes is the total payload volume of transfers whose
	// digest was seen on at least two ranks.
	CrossRankDupBytes int64          `json:"crossRankDupBytes"`
	Problems          []FleetProblem `json:"problems"`
	Skew              *FleetSkew     `json:"skew,omitempty"`
}

// AggregateFleet merges per-rank pipeline outcomes into one fleet report:
// duplicate transfers are deduplicated across ranks by payload digest,
// problem groups are summed with min/max rank attribution, and the skew
// account (when the whole-world reference run produced one) rides along.
// outcomes must be indexed by rank.
func AggregateFleet(app string, ranks int, outcomes []RankOutcome, skew *FleetSkew) *FleetReport {
	fr := &FleetReport{App: app, Ranks: ranks, PerRank: outcomes, Skew: skew}
	for i := range outcomes {
		o := &outcomes[i]
		if o.Report == nil {
			fr.Partial = true
			fr.FailedRanks = append(fr.FailedRanks, o.Rank)
			continue
		}
		fr.Analyzed++
		o.ExecTime = o.Report.UninstrumentedTime
		if o.Report.Analysis != nil {
			o.TotalBenefit = o.Report.Analysis.TotalBenefit()
			o.Problems = len(o.Report.Analysis.Graph.ProblematicNodes())
		}
	}
	sort.Ints(fr.FailedRanks)
	fr.Duplicates, fr.CrossRankDupBytes = crossRankDuplicates(outcomes)
	fr.Problems = fleetProblems(outcomes)
	return fr
}

// crossRankDuplicates scans every analyzed rank's resolved transfer hashes
// and reports each digest seen on two or more ranks.
func crossRankDuplicates(outcomes []RankOutcome) ([]FleetDuplicate, int64) {
	type acc struct {
		fn      string
		ranks   []int
		records int
		bytes   int64
	}
	byHash := make(map[string]*acc)
	var order []string // first-appearance order for stable iteration
	for i := range outcomes {
		o := &outcomes[i]
		if o.Report == nil || o.Report.Trace == nil {
			continue
		}
		// Hashes are filled lazily by stage 3's resolver; force them
		// before reading. Idempotent, and a no-op on decoded runs whose
		// hashes are already strings.
		o.Report.Trace.ResolveHashes()
		for r := range o.Report.Trace.Records {
			rec := &o.Report.Trace.Records[r]
			if rec.Class != trace.ClassTransfer || !hashstore.ValidDigest(rec.Hash) {
				continue
			}
			if rec.Duplicate {
				o.Duplicates++
			}
			a := byHash[rec.Hash]
			if a == nil {
				a = &acc{fn: rec.Func}
				byHash[rec.Hash] = a
				order = append(order, rec.Hash)
			}
			if n := len(a.ranks); n == 0 || a.ranks[n-1] != o.Rank {
				a.ranks = append(a.ranks, o.Rank)
			}
			a.records++
			a.bytes += int64(rec.Bytes)
		}
	}
	var out []FleetDuplicate
	var totalBytes int64
	for _, h := range order {
		a := byHash[h]
		if len(a.ranks) < 2 {
			continue
		}
		out = append(out, FleetDuplicate{
			Hash: h, Func: a.fn, Ranks: a.ranks, Records: a.records, Bytes: a.bytes,
		})
		totalBytes += a.bytes
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Hash < out[j].Hash
	})
	return out, totalBytes
}

// fleetProblems merges the per-rank overview groups by (kind, label),
// summing benefit and attributing the min and max to their ranks.
func fleetProblems(outcomes []RankOutcome) []FleetProblem {
	type key struct{ kind, label string }
	byKey := make(map[key]*FleetProblem)
	var order []key
	for i := range outcomes {
		o := &outcomes[i]
		if o.Report == nil || o.Report.Analysis == nil {
			continue
		}
		for _, grp := range o.Report.Analysis.Overview {
			k := key{grp.Kind.String(), grp.Label}
			fp := byKey[k]
			if fp == nil {
				fp = &FleetProblem{
					Kind: k.kind, Label: k.label,
					Min: grp.Benefit, Max: grp.Benefit,
					MinRank: o.Rank, MaxRank: o.Rank,
				}
				byKey[k] = fp
				order = append(order, k)
			}
			fp.Ranks = append(fp.Ranks, o.Rank)
			fp.Total += grp.Benefit
			if grp.Benefit < fp.Min {
				fp.Min, fp.MinRank = grp.Benefit, o.Rank
			}
			if grp.Benefit > fp.Max {
				fp.Max, fp.MaxRank = grp.Benefit, o.Rank
			}
		}
	}
	out := make([]FleetProblem, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// TopProblem returns the highest-total aggregated problem, if any.
func (fr *FleetReport) TopProblem() (FleetProblem, bool) {
	if len(fr.Problems) == 0 {
		return FleetProblem{}, false
	}
	return fr.Problems[0], true
}

// WriteJSON exports the fleet report. The document contains no maps and no
// wall-clock values, so it is byte-identical for identical inputs
// regardless of worker count.
func (fr *FleetReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fr)
}
