package ffm

import (
	"encoding/json"
	"io"

	"diogenes/internal/simtime"
)

// RankOutcome is one rank's pipeline outcome within a fleet analysis. The
// full Report stays in memory for aggregation but is excluded from the
// serialized fleet document; the summary fields below travel instead.
type RankOutcome struct {
	Rank   int     `json:"rank"`
	Report *Report `json:"-"`
	// Err is the final error message when the rank failed both attempts.
	Err string `json:"error,omitempty"`
	// Attempts is 1 for a clean first run, 2 when the rank was retried.
	Attempts int  `json:"attempts"`
	Retried  bool `json:"retried,omitempty"`
	// FromCache marks a first attempt served by the report cache.
	FromCache bool `json:"fromCache,omitempty"`

	// Summary fields filled from Report by AggregateFleet.
	ExecTime     simtime.Duration `json:"execTime,omitempty"`
	TotalBenefit simtime.Duration `json:"totalBenefit,omitempty"`
	Problems     int              `json:"problems,omitempty"`
	Duplicates   int              `json:"duplicateTransfers,omitempty"`
}

// Failed reports whether the rank produced no report. It keys on the
// error string, not the in-process Report pointer, so an outcome decoded
// from a serialized fleet document answers the same way.
func (o RankOutcome) Failed() bool { return o.Err != "" }

// FleetDuplicate is one cross-rank duplicate-transfer finding: the same
// payload digest moved between host and device on two or more ranks. The
// per-rank pipelines each flag their own repeats; this merges them into one
// fleet-level finding with the rank list.
type FleetDuplicate struct {
	Hash  string `json:"hash"`
	Func  string `json:"func"`
	Ranks []int  `json:"ranks"`
	// Records is the number of transfer records carrying this digest
	// across all analyzed ranks; Bytes is their total payload volume.
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// FleetProblem aggregates one analysis problem group (same kind and label)
// across the ranks that reported it.
type FleetProblem struct {
	Kind    string           `json:"kind"`
	Label   string           `json:"label"`
	Ranks   []int            `json:"ranks"`
	Total   simtime.Duration `json:"total"`
	Min     simtime.Duration `json:"min"`
	Max     simtime.Duration `json:"max"`
	MinRank int              `json:"minRank"`
	MaxRank int              `json:"maxRank"`
}

// FleetSkewRank is one rank's collective-skew account (mirrors
// mpi.RankSkew without importing the package: ffm stays launch-agnostic).
type FleetSkewRank struct {
	Rank      int              `json:"rank"`
	Waited    simtime.Duration `json:"waited"`
	Charged   simtime.Duration `json:"charged"`
	Straggles int              `json:"straggles"`
}

// FleetBarrier is one skewed collective from the whole-world reference
// run's barrier ledger: when it happened, which rank arrived last, and how
// long every other rank stood waiting. Balanced barriers are not recorded,
// so a perfectly balanced world serializes without a barriers field.
type FleetBarrier struct {
	// Index is the barrier's ordinal among all collectives executed
	// (balanced ones included).
	Index int `json:"index"`
	// Arrive is the straggler's arrival — the moment the wait ended.
	Arrive simtime.Time `json:"arrive"`
	// Latency is the collective's own cost, paid by every rank after
	// Arrive.
	Latency simtime.Duration `json:"latency"`
	// Straggler is the last-arriving rank charged this barrier's wait.
	Straggler int `json:"straggler"`
	// Wait is the total wait across all ranks at this barrier.
	Wait simtime.Duration `json:"wait"`
	// RankWaits is each rank's wait, indexed by rank.
	RankWaits []simtime.Duration `json:"rankWaits"`
}

// FleetSkew is the whole-world collective-skew attribution: wait time is
// charged to the straggler rank that caused it.
type FleetSkew struct {
	// TotalWait is the time all ranks together spent blocked at barriers
	// behind slower ranks (collective latency excluded).
	TotalWait simtime.Duration `json:"totalWait"`
	// Straggler is the rank charged the most wait, or -1 when the world
	// is perfectly balanced.
	Straggler int             `json:"straggler"`
	PerRank   []FleetSkewRank `json:"perRank"`
	// Barriers is the per-collective ledger behind the per-rank totals:
	// one entry per skewed barrier, in execution order. Empty in a
	// balanced world.
	Barriers []FleetBarrier `json:"barriers,omitempty"`
}

// FleetReport is the cluster-wide analysis: every rank's pipeline outcome
// plus the cross-rank aggregates.
type FleetReport struct {
	App   string `json:"app"`
	Ranks int    `json:"ranks"`
	// Analyzed is the number of ranks that produced a report.
	Analyzed int `json:"analyzed"`
	// Partial marks a degraded report: one or more ranks failed both
	// attempts and are missing from the aggregates.
	Partial     bool          `json:"partial"`
	FailedRanks []int         `json:"failedRanks,omitempty"`
	PerRank     []RankOutcome `json:"perRank"`

	Duplicates []FleetDuplicate `json:"crossRankDuplicates"`
	// CrossRankDupBytes is the total payload volume of transfers whose
	// digest was seen on at least two ranks.
	CrossRankDupBytes int64          `json:"crossRankDupBytes"`
	Problems          []FleetProblem `json:"problems"`
	Skew              *FleetSkew     `json:"skew,omitempty"`
}

// AggregateFleet merges per-rank pipeline outcomes into one fleet report:
// duplicate transfers are deduplicated across ranks by payload digest,
// problem groups are summed with min/max rank attribution, and the skew
// account (when the whole-world reference run produced one) rides along.
// outcomes must be indexed by rank.
//
// It is implemented as a sequential fold over the same FleetPartial
// machinery the streaming reduction uses — one leaf per rank, absorbed in
// rank order — so the collect-then-aggregate entry point and the
// accumulator produce byte-identical documents by construction. Each
// outcome's full Report is released as it is folded; the returned
// report's PerRank entries carry the summaries only.
func AggregateFleet(app string, ranks int, outcomes []RankOutcome, skew *FleetSkew) *FleetReport {
	var root *FleetPartial
	for i := range outcomes {
		leaf := FoldRankOutcome(outcomes[i])
		if root == nil {
			root = leaf
			continue
		}
		root.absorb(leaf)
	}
	if root == nil {
		root = &FleetPartial{}
	}
	return root.assemble(app, ranks, skew)
}

// TopProblem returns the highest-total aggregated problem, if any.
func (fr *FleetReport) TopProblem() (FleetProblem, bool) {
	if len(fr.Problems) == 0 {
		return FleetProblem{}, false
	}
	return fr.Problems[0], true
}

// WriteJSON exports the fleet report. The document contains no maps and no
// wall-clock values, so it is byte-identical for identical inputs
// regardless of worker count.
func (fr *FleetReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fr)
}
