package ffm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/cuda"
	"diogenes/internal/ffm/graph"
	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// testApp is a synthetic workload exercising every problem class:
//   - a duplicate H2D transfer every iteration after the first (same bytes);
//   - an unnecessary cudaDeviceSynchronize whose protected data is never
//     touched;
//   - a required synchronization whose result is read immediately (not a
//     problem);
//   - a required synchronization whose result is read only after a long
//     stretch of unrelated CPU work (misplaced);
//   - a cudaFree performing an implicit synchronization.
type testApp struct {
	iters int
}

func (a *testApp) Name() string { return "ffm-test-app" }

func (a *testApp) Run(p *proc.Process) error {
	var err error
	p.In("main", "main.cpp", 1, func() {
		input := p.Host.Alloc(64*1024, "input")
		result := p.Host.Alloc(64*1024, "result")
		payload := make([]byte, 64*1024)
		simtime.NewRNG(1).Bytes(payload)
		if err = p.Host.Poke(input.Base(), payload); err != nil {
			return
		}
		for i := 0; i < a.iters; i++ {
			p.In("step", "solver.cpp", 100, func() {
				var dev *gpu.DevBuf
				dev, err = p.Ctx.Malloc(64*1024, "work")
				if err != nil {
					return
				}
				// Same payload every iteration: duplicate from iter 2 on.
				p.At(101)
				if err = p.Ctx.MemcpyH2D(dev.Base(), input.Base(), 64*1024); err != nil {
					return
				}
				p.At(103)
				if _, err = p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name: "compute", Duration: 300 * simtime.Microsecond,
					Stream: gpu.LegacyStream,
					Writes: []cuda.KernelWrite{{Ptr: dev.Base(), Size: 1024, Seed: uint64(i + 1)}},
				}); err != nil {
					return
				}
				// Pull the (unique per iteration) result down; the memcpy
				// synchronizes implicitly, and the prompt read resolves it.
				p.At(105)
				if err = p.Ctx.MemcpyD2H(result.Base(), dev.Base(), 1024); err != nil {
					return
				}
				if _, err = p.Read(result.Base(), 16, 106); err != nil {
					return
				}
				p.CPUWork(50 * simtime.Microsecond)

				// Required, well-placed explicit sync: the most recent sync
				// before the prompt read of GPU-writable data.
				p.At(110)
				if _, err = p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name: "compute2", Duration: 200 * simtime.Microsecond,
					Stream: gpu.LegacyStream,
				}); err != nil {
					return
				}
				p.Ctx.DeviceSynchronize()
				if _, err = p.Read(result.Base(), 16, 112); err != nil {
					return
				}
				p.CPUWork(100 * simtime.Microsecond)

				// Unnecessary sync: nothing GPU-written is accessed after.
				p.At(115)
				p.Ctx.DeviceSynchronize()
				p.CPUWork(200 * simtime.Microsecond)

				// Misplaced: sync, then long unrelated CPU work, then use.
				p.At(118)
				if _, err = p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name: "compute3", Duration: 200 * simtime.Microsecond,
					Stream: gpu.LegacyStream,
				}); err != nil {
					return
				}
				p.Ctx.DeviceSynchronize()
				p.CPUWork(500 * simtime.Microsecond) // long gap before use
				if _, err = p.Read(result.Base(), 16, 122); err != nil {
					return
				}

				// Implicit sync at free, nothing accessed after.
				p.At(130)
				if err = p.Ctx.Free(dev); err != nil {
					return
				}
				p.CPUWork(100 * simtime.Microsecond)
			})
			if err != nil {
				return
			}
		}
	})
	return err
}

func runPipeline(t *testing.T, iters int) *Report {
	t.Helper()
	rep, err := Run(&testApp{iters: iters}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestBaselineFindsSyncFuncs(t *testing.T) {
	base, err := RunBaseline(&testApp{iters: 3}, proc.DefaultFactory(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if base.SyncFunnel != cuda.FuncInternalSync {
		t.Fatalf("funnel = %q", base.SyncFunnel)
	}
	want := map[cuda.Func]bool{
		cuda.FuncMemcpy: true, cuda.FuncDeviceSync: true, cuda.FuncFree: true,
	}
	got := make(map[cuda.Func]bool)
	for _, fn := range base.SyncFuncs {
		got[fn] = true
	}
	for fn := range want {
		if !got[fn] {
			t.Errorf("sync func %q not discovered (got %v)", fn, base.SyncFuncs)
		}
	}
	if got[cuda.FuncMalloc] || got[cuda.FuncLaunchKernel] {
		t.Errorf("non-synchronizing function listed: %v", base.SyncFuncs)
	}
	// Per iteration: memcpy H2D, memcpy D2H, 3× device sync, free = 6.
	if base.SyncEvents != 18 {
		t.Errorf("SyncEvents = %d, want 18", base.SyncEvents)
	}
	if base.ExecTime <= 0 || base.TotalCalls == 0 {
		t.Error("baseline missing exec time or call count")
	}
}

func TestDetailedTracingRecords(t *testing.T) {
	factory := proc.DefaultFactory()
	app := &testApp{iters: 2}
	base, err := RunBaseline(app, factory, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunDetailedTracing(app, factory, base, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if run.Stage != 2 || run.App != app.Name() {
		t.Fatalf("run header = %+v", run)
	}
	// Per iteration: 2 transfers (H2D + D2H) and 4 sync records
	// (3 device syncs + free).
	if got := len(run.OfClass(trace.ClassTransfer)); got != 4 {
		t.Errorf("transfers = %d, want 4", got)
	}
	if got := len(run.OfClass(trace.ClassSync)); got != 8 {
		t.Errorf("syncs = %d, want 8", got)
	}
	for i, rec := range run.Records {
		if len(rec.Stack) == 0 {
			t.Fatalf("record %d missing stack", i)
		}
		if rec.Stack.Leaf().Function != "step" {
			t.Fatalf("record %d leaf = %v", i, rec.Stack.Leaf())
		}
	}
}

func TestMemoryTracingAnnotations(t *testing.T) {
	factory := proc.DefaultFactory()
	app := &testApp{iters: 3}
	base, err := RunBaseline(app, factory, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunMemoryTracing(app, factory, base, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	// Content hashes are rendered lazily; materialize them as an exporter
	// (trace.Run.WriteJSON) would.
	run.ResolveHashes()

	// The H2D payload repeats every iteration: iterations 2 and 3 are dups.
	var h2dDups, h2dTotal int
	for _, rec := range run.OfClass(trace.ClassTransfer) {
		if rec.Dir == "HtoD" {
			h2dTotal++
			if rec.Duplicate {
				h2dDups++
			}
			if rec.Hash == "" {
				t.Error("transfer missing content hash")
			}
		}
	}
	if h2dTotal != 3 || h2dDups != 2 {
		t.Errorf("H2D: %d total %d dups, want 3/2", h2dTotal, h2dDups)
	}

	// Sync classification inputs: the first device sync of each iteration
	// is followed by a D2H whose implicit sync is resolved by the read; the
	// second device sync sees no access.
	syncs := run.OfClass(trace.ClassSync)
	var accessed, unaccessed int
	for _, rec := range syncs {
		if rec.ProtectedAccess {
			accessed++
			if rec.AccessSite.IsZero() {
				t.Error("accessed sync missing site")
			}
		} else {
			unaccessed++
		}
	}
	if accessed == 0 || unaccessed == 0 {
		t.Errorf("accessed=%d unaccessed=%d, want both nonzero", accessed, unaccessed)
	}
}

func TestSyncUseMeasuresFirstUse(t *testing.T) {
	factory := proc.DefaultFactory()
	app := &testApp{iters: 2}
	base, _ := RunBaseline(app, factory, DefaultOverheads())
	s3, err := RunMemoryTracing(app, factory, base, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	s4, stageTime, err := RunSyncUse(app, factory, base, s3, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if stageTime <= 0 {
		t.Fatal("stage 4 did not run")
	}
	if s4.Stage != 4 {
		t.Fatalf("stage = %d", s4.Stage)
	}
	var quick, slow int
	for _, rec := range s4.Records {
		if !rec.ProtectedAccess {
			continue
		}
		// FirstUse is measured on the overhead-compensated timeline, so a
		// promptly-consumed synchronization can legitimately read 0.
		if rec.FirstUse > 400*simtime.Microsecond {
			slow++
		} else {
			quick++
		}
	}
	if quick == 0 {
		t.Error("no promptly-used synchronization measured")
	}
	if slow == 0 {
		t.Error("no late-used (misplaced) synchronization measured")
	}
	// Original stage-3 run untouched.
	for _, rec := range s3.Records {
		if rec.FirstUse != 0 {
			t.Fatal("RunSyncUse mutated stage 3 records")
		}
	}
}

func TestFullPipelineClassification(t *testing.T) {
	rep := runPipeline(t, 3)
	counts := rep.Analysis.ProblemCounts()
	if counts[graph.UnnecessarySync] == 0 {
		t.Error("no unnecessary synchronizations found")
	}
	if counts[graph.MisplacedSync] == 0 {
		t.Error("no misplaced synchronizations found")
	}
	if counts[graph.UnnecessaryTransfer] != 2 {
		t.Errorf("unnecessary transfers = %d, want 2", counts[graph.UnnecessaryTransfer])
	}
	if rep.Analysis.TotalBenefit() <= 0 {
		t.Error("no benefit estimated")
	}
	if got := rep.Analysis.Percent(rep.Analysis.TotalBenefit()); got <= 0 || got >= 100 {
		t.Errorf("benefit percent = %v", got)
	}
}

func TestPipelineOverheadMultiple(t *testing.T) {
	rep := runPipeline(t, 3)
	if rep.CollectionCost() <= rep.UninstrumentedTime {
		t.Fatal("collection not more expensive than uninstrumented run")
	}
	// The synthetic test app is tiny and transfer-heavy, so hashing makes
	// its multiple far larger than the real applications' 8×–20×; the
	// bound here only guards against the accounting breaking entirely.
	m := rep.OverheadMultiple()
	if m < 2 || m > 500 {
		t.Fatalf("overhead multiple %.1f out of plausible range", m)
	}
	if rep.Stage3Time <= rep.Stage2Time {
		t.Error("stage 3 (hashing + load/store) should cost more than stage 2")
	}
}

func TestGroupingsProduced(t *testing.T) {
	rep := runPipeline(t, 3)
	a := rep.Analysis
	if len(a.SinglePoints) == 0 || len(a.Folds) == 0 || len(a.Sequences) == 0 {
		t.Fatalf("groupings: %d points, %d folds, %d seqs",
			len(a.SinglePoints), len(a.Folds), len(a.Sequences))
	}
	if len(a.Overview) != len(a.Folds)+len(a.Sequences) {
		t.Fatal("overview should merge folds and sequences")
	}
	for i := 1; i < len(a.Overview); i++ {
		if a.Overview[i].Benefit > a.Overview[i-1].Benefit {
			t.Fatal("overview not sorted by benefit")
		}
	}
	top, ok := a.TopGroup()
	if !ok || top.Benefit <= 0 {
		t.Fatalf("top group = %+v ok=%v", top, ok)
	}
}

func TestSavingsByFuncExcludesNonProblematic(t *testing.T) {
	rep := runPipeline(t, 3)
	savings := rep.Analysis.SavingsByFunc()
	if len(savings) == 0 {
		t.Fatal("no savings rows")
	}
	for i, fs := range savings {
		if fs.Pos != i+1 {
			t.Fatalf("pos %d = %d", i, fs.Pos)
		}
		if fs.Func == "cudaMalloc" || fs.Func == "cudaLaunchKernel" {
			t.Fatalf("non-problematic function %q in savings", fs.Func)
		}
		if i > 0 && fs.Savings > savings[i-1].Savings {
			t.Fatal("savings not sorted")
		}
	}
}

func TestSubsequenceRefinement(t *testing.T) {
	rep := runPipeline(t, 3)
	var seq graph.Group
	found := false
	for _, s := range rep.Analysis.Sequences {
		if len(s.Nodes) >= 2 {
			seq = s
			found = true
			break
		}
	}
	if !found {
		t.Skip("no multi-node sequence in this workload")
	}
	sub, err := rep.Analysis.Subsequence(seq, 2, len(seq.Nodes))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Benefit < 0 || sub.Benefit > seq.Benefit {
		t.Fatalf("sub benefit %v vs seq %v", sub.Benefit, seq.Benefit)
	}
}

func TestAnalysisJSONExport(t *testing.T) {
	rep := runPipeline(t, 2)
	var buf bytes.Buffer
	if err := rep.Analysis.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	for _, key := range []string{"app", "execTime", "totalBenefit", "overview", "savingsByFunc"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("export missing %q", key)
		}
	}
	if !strings.Contains(buf.String(), "ffm-test-app") {
		t.Error("app name missing from export")
	}
}

func TestBuildGraphStructure(t *testing.T) {
	run := &trace.Run{
		App: "x", ExecTime: 1000,
		Records: []trace.Record{
			{Seq: 1, Func: "cudaMemcpy", Class: trace.ClassTransfer, Entry: 100, Exit: 200, Duplicate: true},
			{Seq: 2, Func: "cudaDeviceSynchronize", Class: trace.ClassSync, Entry: 300, Exit: 500},
			{Seq: 3, Func: "cudaDeviceSynchronize", Class: trace.ClassSync, Entry: 500, Exit: 600,
				ProtectedAccess: true, FirstUse: 200},
		},
	}
	opts := AnalysisOptions{MisplacedThreshold: 100}
	g := BuildGraph(run, opts)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nodes: CWork(0-100), CLaunch, CWork(200-300), CWait, CWait, CWork tail.
	if len(g.CPU) != 6 {
		t.Fatalf("nodes = %d: %+v", len(g.CPU), g.CPU)
	}
	if g.CPU[1].Problem != graph.UnnecessaryTransfer {
		t.Fatal("dup transfer not flagged")
	}
	if g.CPU[3].Problem != graph.UnnecessarySync {
		t.Fatal("unaccessed sync not flagged")
	}
	if g.CPU[4].Problem != graph.MisplacedSync || g.CPU[4].FirstUseTime != 200 {
		t.Fatalf("late-use sync = %+v", g.CPU[4])
	}
	if g.CPU[5].Type != graph.CWork || g.CPU[5].OutCPU != 400 {
		t.Fatalf("tail = %+v", g.CPU[5])
	}
}

func TestBuildGraphPromptUseIsNotProblem(t *testing.T) {
	run := &trace.Run{
		App: "x", ExecTime: 1000,
		Records: []trace.Record{
			{Seq: 1, Func: "cudaDeviceSynchronize", Class: trace.ClassSync, Entry: 0, Exit: 100,
				ProtectedAccess: true, FirstUse: 10},
		},
	}
	g := BuildGraph(run, AnalysisOptions{MisplacedThreshold: 100})
	if g.CPU[0].Problematic() {
		t.Fatal("promptly-used sync flagged as problem")
	}
}

func TestMatchStage2Timing(t *testing.T) {
	s2 := &trace.Run{ExecTime: 500, Records: []trace.Record{
		{Seq: 1, Entry: 10, Exit: 20, SyncWait: 5},
	}}
	s4 := &trace.Run{ExecTime: 900, Records: []trace.Record{
		{Seq: 1, Entry: 100, Exit: 300, SyncWait: 80, Duplicate: true},
	}}
	MatchStage2Timing(s4, s2)
	r := s4.Records[0]
	if r.Entry != 10 || r.Exit != 20 || r.SyncWait != 5 {
		t.Fatalf("timing not matched: %+v", r)
	}
	if !r.Duplicate {
		t.Fatal("annotation lost")
	}
	if s4.ExecTime != 500 {
		t.Fatalf("exec time = %v", s4.ExecTime)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	a := runPipeline(t, 2)
	b := runPipeline(t, 2)
	if a.UninstrumentedTime != b.UninstrumentedTime {
		t.Fatal("uninstrumented times differ across runs")
	}
	if a.Analysis.TotalBenefit() != b.Analysis.TotalBenefit() {
		t.Fatal("benefit estimates differ across runs")
	}
	if a.OverheadMultiple() != b.OverheadMultiple() {
		t.Fatal("overhead differs across runs")
	}
}

// hangingApp deadlocks: it launches a never-completing kernel and then
// synchronizes. The pipeline must report the deadlock as an error, not
// crash the tool.
type hangingApp struct{}

func (hangingApp) Name() string { return "hanging" }

func (hangingApp) Run(p *proc.Process) error {
	p.In("main", "hang.cpp", 1, func() {
		_, _ = p.Ctx.LaunchKernel(cuda.KernelSpec{
			Name: "spin", Duration: simtime.Duration(simtime.Infinity), Stream: gpu.LegacyStream,
		})
		p.Ctx.DeviceSynchronize()
	})
	return nil
}

func TestPipelineSurvivesDeadlockedApp(t *testing.T) {
	_, err := Run(hangingApp{}, DefaultConfig())
	if err == nil {
		t.Fatal("deadlocked app produced no error")
	}
	if !strings.Contains(err.Error(), "deadlocked") {
		t.Fatalf("error = %v, want deadlock report", err)
	}
}

func TestOverlapStats(t *testing.T) {
	rep := runPipeline(t, 3)
	st := rep.Overlap()
	if st.ExecTime != rep.UninstrumentedTime {
		t.Fatal("exec time mismatch")
	}
	if st.GPUBusy <= 0 || st.GPUBusy > st.ExecTime {
		t.Fatalf("GPUBusy = %v of %v", st.GPUBusy, st.ExecTime)
	}
	if st.GPUBusy+st.GPUIdle != st.ExecTime {
		t.Fatal("busy + idle != exec")
	}
	if st.GPUUtilization <= 0 || st.GPUUtilization > 1 {
		t.Fatalf("utilization = %v", st.GPUUtilization)
	}
	if st.CPUBlocked <= 0 || st.BlockedShare <= 0 {
		t.Fatal("no blocked time measured")
	}
}

// TestIntroductionHeadline reproduces the §1 claim: "problematic
// synchronizations and memory transfers can account for as much as 85% of
// execution time in real world applications".
func TestIntroductionHeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factory = apps.ExtremeFactory()
	rep, err := Run(apps.NewExtreme(0.1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pct := rep.Analysis.Percent(rep.Analysis.TotalBenefit())
	if pct < 75 || pct > 95 {
		t.Fatalf("recoverable share = %.1f%%, want ~85%%", pct)
	}
}
