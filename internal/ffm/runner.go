package ffm

import (
	"context"
	"fmt"

	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/sched"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// Config configures a full FFM run.
type Config struct {
	Factory   proc.Factory
	Overheads Overheads
	Analysis  AnalysisOptions
	// Workers bounds how many collection stages run concurrently once the
	// stage-1 baseline exists. 0 or 1 keeps the historical serial order;
	// 2 or more runs stage 2 (detailed tracing) in parallel with stages
	// 3→4 (memory tracing, then sync-use). Every stage executes the
	// application in its own fresh process on its own virtual clock, so
	// the report is byte-identical regardless of Workers.
	Workers int
}

// DefaultConfig returns the standard tool configuration.
func DefaultConfig() Config {
	return Config{
		Factory:   proc.DefaultFactory(),
		Overheads: DefaultOverheads(),
		Analysis:  DefaultAnalysisOptions(),
	}
}

// Report is the complete output of the FFM pipeline for one application.
type Report struct {
	App string

	// UninstrumentedTime is the application's execution time with no
	// probes attached — the denominator for benefit percentages and the
	// overhead multiple.
	UninstrumentedTime simtime.Duration

	Baseline *BaselineResult
	Analysis *Analysis

	// Trace is the fully annotated stage-4 run (stage-2 timings merged in)
	// that stage 5 analysed — the JSON interchange payload other tools can
	// consume (§4).
	Trace *trace.Run

	// DeviceOps is the device-operation log of the uninstrumented
	// reference run, for timeline visualization. Its timestamps line up
	// with the overhead-compensated trace timestamps to within the
	// compensation error.
	DeviceOps []*gpu.Op

	// Stage execution times, for the §5.3 overhead accounting.
	Stage1Time simtime.Duration
	Stage2Time simtime.Duration
	Stage3Time simtime.Duration
	Stage4Time simtime.Duration
}

// CollectionCost is the total virtual time spent executing the application
// under instrumentation across all collection stages.
func (r *Report) CollectionCost() simtime.Duration {
	return r.Stage1Time + r.Stage2Time + r.Stage3Time + r.Stage4Time
}

// OverheadMultiple is CollectionCost divided by the uninstrumented
// execution time — the figure §5.3 reports as 8× (cumf_als) to 20× (cuIBM).
func (r *Report) OverheadMultiple() float64 {
	if r.UninstrumentedTime <= 0 {
		return 0
	}
	return float64(r.CollectionCost()) / float64(r.UninstrumentedTime)
}

// EstimatedBenefitPercent expresses a benefit duration against the
// uninstrumented execution time.
func (r *Report) EstimatedBenefitPercent(d simtime.Duration) float64 {
	if r.UninstrumentedTime <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(r.UninstrumentedTime)
}

// Run executes the full five-stage FFM pipeline on the application: an
// uninstrumented reference run, stage 1 (discovery + baseline), stage 2
// (detailed tracing), stage 3 (memory tracing and data hashing), stage 4
// (sync-use analysis) and stage 5 (analysis). No user interaction happens
// between stages (§3: "the execution of these stages is designed to be
// automated").
//
// Deviation from the prototype: Diogenes runs stages 1–3 separately for
// synchronization and transfer problems and merges in stage 5 (§4); here a
// single combined collection per stage gathers both, which preserves every
// analysis input while halving the number of runs. The overhead model
// accounts for the combined probes.
func Run(app proc.App, cfg Config) (*Report, error) {
	rep := &Report{App: app.Name()}

	// Reference run: completely uninstrumented.
	reference := func(context.Context) error {
		p := cfg.Factory.New()
		if err := proc.SafeRun(app, p); err != nil {
			return fmt.Errorf("ffm: uninstrumented run of %s: %w", app.Name(), err)
		}
		rep.UninstrumentedTime = p.ExecTime()
		rep.DeviceOps = p.Dev.Ops()
		return nil
	}
	// Stage 1: discovery + baseline. Independent of the reference run (both
	// start fresh processes), so the two overlap when Workers allows.
	var base *BaselineResult
	baseline := func(context.Context) error {
		var err error
		base, err = RunBaseline(app, cfg.Factory, cfg.Overheads)
		return err
	}
	if cfg.Workers <= 1 {
		if err := reference(nil); err != nil {
			return nil, err
		}
		if err := baseline(nil); err != nil {
			return nil, err
		}
	} else if err := sched.Go(context.Background(), 2, reference, baseline); err != nil {
		return nil, err
	}
	rep.Baseline = base
	rep.Stage1Time = base.ExecTime

	stage2, stage4, err := runCollection(app, cfg, base)
	if err != nil {
		return nil, err
	}
	rep.Stage2Time = stage2.RawExecTime
	rep.Stage3Time = stage4.stage3Raw
	rep.Stage4Time = stage4.execTime

	// Use the lightweight stage-2 timings for the benefit model, keeping
	// the stage-3/4 problem annotations.
	MatchStage2Timing(stage4.run, stage2)
	rep.Trace = stage4.run
	rep.Analysis = Analyze(stage4.run, cfg.Analysis)
	return rep, nil
}

// stage4Result bundles the stage-3→4 chain's outputs: the annotated run,
// the stage-4 virtual execution time, and stage 3's raw run time for the
// §5.3 overhead accounting.
type stage4Result struct {
	run       *trace.Run
	execTime  simtime.Duration
	stage3Raw simtime.Duration
}

// runCollection executes the post-baseline collection stages. Stage 2
// depends only on the baseline, and stage 4 depends only on stage 3, so
// with cfg.Workers > 1 the two chains — stage 2, and stage 3 followed by
// stage 4 — run concurrently on the sched engine. Each stage executes the
// application in a fresh process, so stage outputs never depend on which
// chain ran first.
func runCollection(app proc.App, cfg Config, base *BaselineResult) (*trace.Run, *stage4Result, error) {
	stage34 := func() (*stage4Result, error) {
		stage3, err := RunMemoryTracing(app, cfg.Factory, base, cfg.Overheads)
		if err != nil {
			return nil, err
		}
		run, execTime, err := RunSyncUse(app, cfg.Factory, base, stage3, cfg.Overheads)
		if err != nil {
			return nil, err
		}
		return &stage4Result{run: run, execTime: execTime, stage3Raw: stage3.RawExecTime}, nil
	}

	if cfg.Workers <= 1 {
		stage2, err := RunDetailedTracing(app, cfg.Factory, base, cfg.Overheads)
		if err != nil {
			return nil, nil, err
		}
		s4, err := stage34()
		if err != nil {
			return nil, nil, err
		}
		return stage2, s4, nil
	}

	var (
		stage2 *trace.Run
		s4     *stage4Result
	)
	err := sched.Go(context.Background(), 2,
		func(context.Context) error {
			var err error
			stage2, err = RunDetailedTracing(app, cfg.Factory, base, cfg.Overheads)
			return err
		},
		func(context.Context) error {
			var err error
			s4, err = stage34()
			return err
		},
	)
	if err != nil {
		return nil, nil, err
	}
	return stage2, s4, nil
}
