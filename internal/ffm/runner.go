package ffm

import (
	"context"
	"fmt"

	"diogenes/internal/gpu"
	"diogenes/internal/obs"
	"diogenes/internal/proc"
	"diogenes/internal/sched"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// Config configures a full FFM run.
type Config struct {
	Factory   proc.Factory
	Overheads Overheads
	Analysis  AnalysisOptions
	// Workers bounds how many collection stages run concurrently once the
	// stage-1 baseline exists. 0 or 1 keeps the historical serial order;
	// 2 or more runs stage 2 (detailed tracing) in parallel with stages
	// 3→4 (memory tracing, then sync-use). Every stage executes the
	// application in its own fresh process on its own virtual clock, so
	// the report is byte-identical regardless of Workers.
	Workers int
	// Obs, when non-nil, receives the run's self-measurement: one span per
	// pipeline stage (virtual-time attributed, so the span layout is
	// byte-identical serial vs parallel), per-subsystem metrics, and the
	// per-application self-overhead report. A nil observer costs only nil
	// checks; recording never advances any virtual clock, so the Report is
	// identical with or without it.
	Obs *obs.Observer
	// Parent, when non-nil, becomes the pipeline's span parent instead of
	// the observer's root. Fleet analysis uses it to group each rank's
	// five-stage pipeline under that rank's span.
	Parent *obs.Span
}

// DefaultConfig returns the standard tool configuration.
func DefaultConfig() Config {
	return Config{
		Factory:   proc.DefaultFactory(),
		Overheads: DefaultOverheads(),
		Analysis:  DefaultAnalysisOptions(),
	}
}

// Report is the complete output of the FFM pipeline for one application.
type Report struct {
	App string

	// UninstrumentedTime is the application's execution time with no
	// probes attached — the denominator for benefit percentages and the
	// overhead multiple.
	UninstrumentedTime simtime.Duration

	Baseline *BaselineResult
	Analysis *Analysis

	// Trace is the fully annotated stage-4 run (stage-2 timings merged in)
	// that stage 5 analysed — the JSON interchange payload other tools can
	// consume (§4).
	Trace *trace.Run

	// DeviceOps is the device-operation log of the uninstrumented
	// reference run, for timeline visualization. Its timestamps line up
	// with the overhead-compensated trace timestamps to within the
	// compensation error.
	DeviceOps []*gpu.Op

	// Stage execution times, for the §5.3 overhead accounting.
	Stage1Time simtime.Duration
	Stage2Time simtime.Duration
	Stage3Time simtime.Duration
	Stage4Time simtime.Duration

	// Per-stage instrumentation charges: the share of each StageNTime that
	// the tool's own probes consumed (trampolines, hashing, load/store
	// snippets). StageNTime − StageNOverhead is the application's time on
	// its own compensated timeline.
	Stage1Overhead simtime.Duration
	Stage2Overhead simtime.Duration
	Stage3Overhead simtime.Duration
	Stage4Overhead simtime.Duration
}

// CollectionCost is the total virtual time spent executing the application
// under instrumentation across all collection stages.
func (r *Report) CollectionCost() simtime.Duration {
	return r.Stage1Time + r.Stage2Time + r.Stage3Time + r.Stage4Time
}

// OverheadMultiple is CollectionCost divided by the uninstrumented
// execution time — the figure §5.3 reports as 8× (cumf_als) to 20× (cuIBM).
func (r *Report) OverheadMultiple() float64 {
	if r.UninstrumentedTime <= 0 {
		return 0
	}
	return float64(r.CollectionCost()) / float64(r.UninstrumentedTime)
}

// EstimatedBenefitPercent expresses a benefit duration against the
// uninstrumented execution time.
func (r *Report) EstimatedBenefitPercent(d simtime.Duration) float64 {
	if r.UninstrumentedTime <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(r.UninstrumentedTime)
}

// SelfOverhead renders the report's §5.3 accounting as the observability
// layer's per-application overhead record: each collection stage's raw cost
// and probe charge against the uninstrumented reference.
func (r *Report) SelfOverhead() *obs.SelfOverhead {
	return &obs.SelfOverhead{
		App:       r.App,
		Reference: r.UninstrumentedTime,
		Stages: []obs.StageCost{
			{Name: "stage1-baseline", Raw: r.Stage1Time, Probe: r.Stage1Overhead},
			{Name: "stage2-detailed-tracing", Raw: r.Stage2Time, Probe: r.Stage2Overhead},
			{Name: "stage3-memory-tracing", Raw: r.Stage3Time, Probe: r.Stage3Overhead},
			{Name: "stage4-sync-use", Raw: r.Stage4Time, Probe: r.Stage4Overhead},
		},
	}
}

// Run executes the full five-stage FFM pipeline on the application: an
// uninstrumented reference run, stage 1 (discovery + baseline), stage 2
// (detailed tracing), stage 3 (memory tracing and data hashing), stage 4
// (sync-use analysis) and stage 5 (analysis). No user interaction happens
// between stages (§3: "the execution of these stages is designed to be
// automated").
//
// Deviation from the prototype: Diogenes runs stages 1–3 separately for
// synchronization and transfer problems and merges in stage 5 (§4); here a
// single combined collection per stage gathers both, which preserves every
// analysis input while halving the number of runs. The overhead model
// accounts for the combined probes.
func Run(app proc.App, cfg Config) (*Report, error) {
	o := cfg.Obs
	mets := o.Metrics()
	parent := cfg.Parent
	if parent == nil {
		parent = o.Root()
	}
	runSpan := parent.Child(0, "app", app.Name())
	defer runSpan.End()

	rep := &Report{App: app.Name()}

	// Reference run: completely uninstrumented.
	reference := func(context.Context) error {
		sp := runSpan.Child(0, "stage", "reference")
		defer sp.End()
		p := cfg.Factory.New()
		p.Ctx.SetMetrics(mets)
		if err := proc.SafeRun(app, p); err != nil {
			return fmt.Errorf("ffm: uninstrumented run of %s: %w", app.Name(), err)
		}
		rep.UninstrumentedTime = p.ExecTime()
		rep.DeviceOps = p.Dev.Ops()
		sp.SetVirtual(rep.UninstrumentedTime)
		sp.SetArg("device_ops", len(rep.DeviceOps))
		addDeviceRows(sp, rep.DeviceOps)
		return nil
	}
	// Stage 1: discovery + baseline. Independent of the reference run (both
	// start fresh processes), so the two overlap when Workers allows.
	var base *BaselineResult
	baseline := func(context.Context) error {
		sp := runSpan.Child(1, "stage", "stage1-baseline")
		defer sp.End()
		var err error
		base, err = runBaseline(app, cfg.Factory, cfg.Overheads, mets)
		if err != nil {
			return err
		}
		sp.SetVirtual(base.ExecTime)
		sp.SetArg("sync_events", base.SyncEvents)
		sp.SetArg("probe_ns", int64(base.ProbeOverhead))
		return nil
	}
	if cfg.Workers <= 1 {
		if err := reference(nil); err != nil {
			return nil, err
		}
		if err := baseline(nil); err != nil {
			return nil, err
		}
	} else if err := sched.GoMetrics(context.Background(), 2, mets, reference, baseline); err != nil {
		return nil, err
	}
	rep.Baseline = base
	rep.Stage1Time = base.ExecTime
	rep.Stage1Overhead = base.ProbeOverhead

	stage2, stage4, err := runCollection(app, cfg, base, runSpan, mets)
	if err != nil {
		return nil, err
	}
	rep.Stage2Time = stage2.RawExecTime
	rep.Stage2Overhead = stage2.RawExecTime - stage2.ExecTime
	rep.Stage3Time = stage4.stage3Raw
	rep.Stage3Overhead = stage4.stage3Probe
	rep.Stage4Time = stage4.execTime
	rep.Stage4Overhead = stage4.probe

	// Use the lightweight stage-2 timings for the benefit model, keeping
	// the stage-3/4 problem annotations.
	MatchStage2Timing(stage4.run, stage2)
	rep.Trace = stage4.run

	s5 := runSpan.Child(5, "stage", "stage5-analysis")
	rep.Analysis = Analyze(stage4.run, cfg.Analysis)
	s5.SetArg("records", len(stage4.run.Records))
	s5.SetArg("groups", len(rep.Analysis.Overview))
	s5.End()

	o.AddSelfOverhead(rep.SelfOverhead())
	return rep, nil
}

// addDeviceRows attaches the reference run's device timeline to the stage
// span: one child per GPU stream, pinned at the stream's first operation so
// the Chrome export shows device activity on its own rows (tid 100+stream)
// under the CPU pipeline. Layout depends only on virtual timestamps, so it
// is deterministic across worker counts.
func addDeviceRows(sp *obs.Span, ops []*gpu.Op) {
	type extent struct {
		lo, hi simtime.Time
		n      int
	}
	streams := make(map[gpu.StreamID]*extent)
	for _, op := range ops {
		if op.End == simtime.Infinity {
			continue
		}
		e := streams[op.Stream]
		if e == nil {
			e = &extent{lo: op.Start, hi: op.End}
			streams[op.Stream] = e
		}
		if op.Start < e.lo {
			e.lo = op.Start
		}
		if op.End > e.hi {
			e.hi = op.End
		}
		e.n++
	}
	for id, e := range streams {
		c := sp.Child(int(id), "gpu", fmt.Sprintf("stream %d", id))
		c.SetRow(100 + int(id))
		c.SetOffset(simtime.Duration(e.lo))
		c.SetVirtual(e.hi.Sub(e.lo))
		c.SetArg("ops", e.n)
	}
}

// addCallBatches attaches a collection stage's driver-call records to its
// span as fixed-size batches pinned at their (overhead-compensated) entry
// timestamps — enough structure to see call phases in the Perfetto UI
// without one event per call.
func addCallBatches(sp *obs.Span, recs []trace.Record) {
	if sp == nil {
		return
	}
	const batchSize = 64
	for i := 0; i < len(recs); i += batchSize {
		j := i + batchSize
		if j > len(recs) {
			j = len(recs)
		}
		b := sp.Child(i/batchSize, "calls", fmt.Sprintf("calls[%d:%d]", i, j))
		b.SetOffset(simtime.Duration(recs[i].Entry))
		b.SetVirtual(recs[j-1].Exit.Sub(recs[i].Entry))
		b.SetArg("records", j-i)
	}
}

// stage4Result bundles the stage-3→4 chain's outputs: the annotated run,
// the stage-4 virtual execution time and probe charge, and stage 3's raw
// run time and probe charge for the §5.3 overhead accounting.
type stage4Result struct {
	run         *trace.Run
	execTime    simtime.Duration
	probe       simtime.Duration
	stage3Raw   simtime.Duration
	stage3Probe simtime.Duration
}

// runCollection executes the post-baseline collection stages. Stage 2
// depends only on the baseline, and stage 4 depends only on stage 3, so
// with cfg.Workers > 1 the two chains — stage 2, and stage 3 followed by
// stage 4 — run concurrently on the sched engine. Each stage executes the
// application in a fresh process, so stage outputs never depend on which
// chain ran first.
func runCollection(app proc.App, cfg Config, base *BaselineResult, runSpan *obs.Span, mets *obs.Registry) (*trace.Run, *stage4Result, error) {
	runStage2 := func(context.Context) (*trace.Run, error) {
		sp := runSpan.Child(2, "stage", "stage2-detailed-tracing")
		defer sp.End()
		stage2, err := runDetailedTracing(app, cfg.Factory, base, cfg.Overheads, mets)
		if err != nil {
			return nil, err
		}
		sp.SetVirtual(stage2.RawExecTime)
		sp.SetArg("records", len(stage2.Records))
		sp.SetArg("probe_ns", int64(stage2.RawExecTime-stage2.ExecTime))
		addCallBatches(sp, stage2.Records)
		return stage2, nil
	}
	stage34 := func() (*stage4Result, error) {
		sp3 := runSpan.Child(3, "stage", "stage3-memory-tracing")
		stage3, err := runMemoryTracing(app, cfg.Factory, base, cfg.Overheads, mets)
		if err != nil {
			sp3.End()
			return nil, err
		}
		sp3.SetVirtual(stage3.RawExecTime)
		sp3.SetArg("records", len(stage3.Records))
		sp3.SetArg("probe_ns", int64(stage3.RawExecTime-stage3.ExecTime))
		addCallBatches(sp3, stage3.Records)
		sp3.End()

		sp4 := runSpan.Child(4, "stage", "stage4-sync-use")
		defer sp4.End()
		run, execTime, probe, err := runSyncUse(app, cfg.Factory, base, stage3, cfg.Overheads, mets)
		if err != nil {
			return nil, err
		}
		sp4.SetVirtual(execTime)
		sp4.SetArg("records", len(run.Records))
		sp4.SetArg("probe_ns", int64(probe))
		return &stage4Result{
			run:         run,
			execTime:    execTime,
			probe:       probe,
			stage3Raw:   stage3.RawExecTime,
			stage3Probe: stage3.RawExecTime - stage3.ExecTime,
		}, nil
	}

	if cfg.Workers <= 1 {
		stage2, err := runStage2(nil)
		if err != nil {
			return nil, nil, err
		}
		s4, err := stage34()
		if err != nil {
			return nil, nil, err
		}
		return stage2, s4, nil
	}

	var (
		stage2 *trace.Run
		s4     *stage4Result
	)
	err := sched.GoMetrics(context.Background(), 2, mets,
		func(ctx context.Context) error {
			var err error
			stage2, err = runStage2(ctx)
			return err
		},
		func(context.Context) error {
			var err error
			s4, err = stage34()
			return err
		},
	)
	if err != nil {
		return nil, nil, err
	}
	return stage2, s4, nil
}
