package ffm

import (
	"fmt"

	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// Config configures a full FFM run.
type Config struct {
	Factory   proc.Factory
	Overheads Overheads
	Analysis  AnalysisOptions
}

// DefaultConfig returns the standard tool configuration.
func DefaultConfig() Config {
	return Config{
		Factory:   proc.DefaultFactory(),
		Overheads: DefaultOverheads(),
		Analysis:  DefaultAnalysisOptions(),
	}
}

// Report is the complete output of the FFM pipeline for one application.
type Report struct {
	App string

	// UninstrumentedTime is the application's execution time with no
	// probes attached — the denominator for benefit percentages and the
	// overhead multiple.
	UninstrumentedTime simtime.Duration

	Baseline *BaselineResult
	Analysis *Analysis

	// Trace is the fully annotated stage-4 run (stage-2 timings merged in)
	// that stage 5 analysed — the JSON interchange payload other tools can
	// consume (§4).
	Trace *trace.Run

	// DeviceOps is the device-operation log of the uninstrumented
	// reference run, for timeline visualization. Its timestamps line up
	// with the overhead-compensated trace timestamps to within the
	// compensation error.
	DeviceOps []*gpu.Op

	// Stage execution times, for the §5.3 overhead accounting.
	Stage1Time simtime.Duration
	Stage2Time simtime.Duration
	Stage3Time simtime.Duration
	Stage4Time simtime.Duration
}

// CollectionCost is the total virtual time spent executing the application
// under instrumentation across all collection stages.
func (r *Report) CollectionCost() simtime.Duration {
	return r.Stage1Time + r.Stage2Time + r.Stage3Time + r.Stage4Time
}

// OverheadMultiple is CollectionCost divided by the uninstrumented
// execution time — the figure §5.3 reports as 8× (cumf_als) to 20× (cuIBM).
func (r *Report) OverheadMultiple() float64 {
	if r.UninstrumentedTime <= 0 {
		return 0
	}
	return float64(r.CollectionCost()) / float64(r.UninstrumentedTime)
}

// EstimatedBenefitPercent expresses a benefit duration against the
// uninstrumented execution time.
func (r *Report) EstimatedBenefitPercent(d simtime.Duration) float64 {
	if r.UninstrumentedTime <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(r.UninstrumentedTime)
}

// Run executes the full five-stage FFM pipeline on the application: an
// uninstrumented reference run, stage 1 (discovery + baseline), stage 2
// (detailed tracing), stage 3 (memory tracing and data hashing), stage 4
// (sync-use analysis) and stage 5 (analysis). No user interaction happens
// between stages (§3: "the execution of these stages is designed to be
// automated").
//
// Deviation from the prototype: Diogenes runs stages 1–3 separately for
// synchronization and transfer problems and merges in stage 5 (§4); here a
// single combined collection per stage gathers both, which preserves every
// analysis input while halving the number of runs. The overhead model
// accounts for the combined probes.
func Run(app proc.App, cfg Config) (*Report, error) {
	rep := &Report{App: app.Name()}

	// Reference run: completely uninstrumented.
	p := cfg.Factory.New()
	if err := proc.SafeRun(app, p); err != nil {
		return nil, fmt.Errorf("ffm: uninstrumented run of %s: %w", app.Name(), err)
	}
	rep.UninstrumentedTime = p.ExecTime()
	rep.DeviceOps = p.Dev.Ops()

	base, err := RunBaseline(app, cfg.Factory, cfg.Overheads)
	if err != nil {
		return nil, err
	}
	rep.Baseline = base
	rep.Stage1Time = base.ExecTime

	stage2, err := RunDetailedTracing(app, cfg.Factory, base, cfg.Overheads)
	if err != nil {
		return nil, err
	}
	rep.Stage2Time = stage2.RawExecTime

	stage3, err := RunMemoryTracing(app, cfg.Factory, base, cfg.Overheads)
	if err != nil {
		return nil, err
	}
	rep.Stage3Time = stage3.RawExecTime

	stage4, stage4Time, err := RunSyncUse(app, cfg.Factory, base, stage3, cfg.Overheads)
	if err != nil {
		return nil, err
	}
	rep.Stage4Time = stage4Time

	// Use the lightweight stage-2 timings for the benefit model, keeping
	// the stage-3/4 problem annotations.
	MatchStage2Timing(stage4, stage2)
	rep.Trace = stage4
	rep.Analysis = Analyze(stage4, cfg.Analysis)
	return rep, nil
}
