package ffm

import (
	"testing"

	"diogenes/internal/cuda"
	"diogenes/internal/ffm/graph"
	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// multiGPUApp round-robins work across four devices the way the paper's
// four-GPU Ray nodes were used, freeing a scratch buffer on each device
// while its kernel runs — one problematic free per device per round.
type multiGPUApp struct{ rounds int }

func (multiGPUApp) Name() string { return "multi-gpu" }

func (a multiGPUApp) Run(p *proc.Process) error {
	n := p.Ctx.DeviceCount()
	out := p.Host.Alloc(4096, "out")
	devOut := make([]*gpu.DevBuf, n)
	for d := 0; d < n; d++ {
		if err := p.Ctx.SetDevice(d); err != nil {
			return err
		}
		var err error
		if devOut[d], err = p.Ctx.Malloc(4096, "dev out"); err != nil {
			return err
		}
	}
	var runErr error
	for r := 0; r < a.rounds && runErr == nil; r++ {
		for d := 0; d < n && runErr == nil; d++ {
			d, r := d, r
			p.In("dispatch", "multi.cpp", 50, func() {
				if runErr = p.Ctx.SetDevice(d); runErr != nil {
					return
				}
				scratch, err := p.Ctx.Malloc(16<<10, "scratch")
				if err != nil {
					runErr = err
					return
				}
				p.At(55)
				if _, err := p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name: "shard", Duration: 2 * simtime.Millisecond, Stream: gpu.LegacyStream,
					Writes: []cuda.KernelWrite{{Ptr: devOut[d].Base(), Size: 128, Seed: uint64(r*8 + d)}},
				}); err != nil {
					runErr = err
					return
				}
				p.CPUWork(300 * simtime.Microsecond)
				p.At(58)
				if runErr = p.Ctx.Free(scratch); runErr != nil {
					return
				}
				p.CPUWork(200 * simtime.Microsecond)
			})
		}
		// Gather: necessary syncs, one per device, results used at once.
		for d := 0; d < n && runErr == nil; d++ {
			d := d
			p.In("gather", "multi.cpp", 70, func() {
				if runErr = p.Ctx.SetDevice(d); runErr != nil {
					return
				}
				p.At(72)
				if runErr = p.Ctx.MemcpyD2H(out.Base(), devOut[d].Base(), 128); runErr != nil {
					return
				}
				if _, err := p.Read(out.Base(), 16, 73); err != nil {
					runErr = err
					return
				}
			})
		}
	}
	return runErr
}

func TestPipelineOnMultiGPUApp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factory.Devices = 4
	rep, err := Run(multiGPUApp{rounds: 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.Analysis.ProblemCounts()
	// 4 devices × 4 rounds of problematic frees.
	if counts[graph.UnnecessarySync] < 16 {
		t.Fatalf("unnecessary syncs = %d, want >= 16", counts[graph.UnnecessarySync])
	}
	savings := rep.Analysis.SavingsByFunc()
	if len(savings) == 0 || savings[0].Func != "cudaFree" {
		t.Fatalf("top finding = %+v", savings)
	}
	// The gather memcpys are necessary: no transfer problems.
	if counts[graph.UnnecessaryTransfer] != 0 {
		t.Fatalf("unexpected transfer problems: %d", counts[graph.UnnecessaryTransfer])
	}
}

func TestMultiGPUFreesOnlyWaitOwnDevice(t *testing.T) {
	// A free on one device must not absorb another device's kernel time:
	// the per-device frees each wait ~their own kernel's remainder.
	cfg := DefaultConfig()
	cfg.Factory.Devices = 2
	base, err := RunBaseline(multiGPUApp{rounds: 2}, cfg.Factory, cfg.Overheads)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunDetailedTracing(multiGPUApp{rounds: 2}, cfg.Factory, base, cfg.Overheads)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range s2.Records {
		if rec.Func != "cudaFree" {
			continue
		}
		// Each kernel runs 2ms with 0.3ms CPU before the free: wait ≈
		// 1.7ms. If cross-device waits leaked, waits would approach 4ms.
		if rec.SyncWait > 3*simtime.Millisecond {
			t.Fatalf("free waited %v — absorbed another device's work", rec.SyncWait)
		}
	}
}
